// Package whatif is the simulation-in-the-loop tuning layer: instead
// of guessing the near future from threshold rules (queue depth,
// utilization stock-ticker), the planner forks the live engine state at
// every checkpoint, simulates the next few virtual hours under a
// candidate grid of (BF, W) settings via the engine's lookahead
// capability (sched.Lookaheader), scores each rollout on a configurable
// objective, and commits the winner as the next tunables.
//
// The planner plugs into core.Tuner as a scheme monitor (core.WhatIf):
// the tuner detects its joint-proposal interface at checkpoints and
// applies the returned pair directly, bypassing the ±Δ walk. In batch
// simulations the lookahead horizon is free — virtual time costs only
// CPU — while a live daemon caps each tick with a wall-clock budget.
package whatif

import (
	"fmt"
	"time"

	"amjs/internal/sched"
	"amjs/internal/units"
)

// Objective selects what a rollout is scored on. Lower scores win.
type Objective int

const (
	// AvgWait minimizes the mean accrued wait of the queued population.
	AvgWait Objective = iota
	// BSLD minimizes the mean bounded slowdown (10-minute floor).
	BSLD
	// Utilization maximizes the busy-node fraction over the horizon.
	Utilization
	// Blend is the fairness-weighted composite: the wait term (accrued
	// waits are the paper's queue-depth fairness pressure — stranded
	// jobs keep accruing) normalized by the horizon, plus a squashed
	// slowdown term and the idle fraction. Weights 0.5 / 0.3 / 0.2.
	Blend
)

// String returns the objective's spec name.
func (o Objective) String() string {
	switch o {
	case AvgWait:
		return "avg-wait"
	case BSLD:
		return "bsld"
	case Utilization:
		return "util"
	case Blend:
		return "blend"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// ParseObjective parses an objective spec name.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "avg-wait", "wait":
		return AvgWait, nil
	case "bsld", "slowdown":
		return BSLD, nil
	case "util", "utilization":
		return Utilization, nil
	case "blend":
		return Blend, nil
	default:
		return 0, fmt.Errorf("whatif: unknown objective %q (want avg-wait, bsld, util, or blend)", s)
	}
}

// Score reduces a rollout to the objective's scalar; lower is better.
func Score(o Objective, r sched.Rollout) float64 {
	switch o {
	case AvgWait:
		return r.AvgWaitMinutes()
	case BSLD:
		return r.AvgBSLD()
	case Utilization:
		return -r.Utilization()
	case Blend:
		horizonMin := float64(r.Horizon) / float64(units.Minute)
		waitNorm := 0.0
		if horizonMin > 0 {
			waitNorm = r.AvgWaitMinutes() / horizonMin
		}
		b := r.AvgBSLD()
		return 0.5*waitNorm + 0.3*b/(1+b) + 0.2*(1-r.Utilization())
	default:
		return r.AvgWaitMinutes()
	}
}

// Config parameterizes a Planner. The zero value is usable: every
// field defaults as documented.
type Config struct {
	// Horizon is the virtual span each rollout simulates. Default 2h —
	// long enough to cover several scheduling passes, short enough that
	// a tick costs a small fraction of the simulated interval.
	Horizon units.Duration

	// Objective scores the rollouts. Default AvgWait.
	Objective Objective

	// BFGrid and WGrid span the candidate settings; the cross product
	// (plus the incumbent pair) is evaluated each tick. Defaults
	// {0.5, 0.75, 1} × {1, 2, 4}.
	BFGrid []float64
	WGrid  []int

	// Workers bounds the rollout fan-out (0 = one per CPU). Results
	// are deterministic at any worker count when Budget is zero.
	Workers int

	// Budget, when positive, caps each tick's wall-clock spend:
	// candidates not yet started when it expires are skipped (the
	// incumbent always runs). Zero — the batch-simulation default —
	// evaluates every candidate, keeping decisions fully deterministic.
	Budget time.Duration

	// MinGain is the relative score improvement over the incumbent
	// required to switch settings (hysteresis against flapping).
	// Default 0: any strict improvement commits.
	MinGain float64

	// Observe runs the planner in shadow mode: rollouts are evaluated
	// and logged but nothing is ever committed. The no-leak
	// differential suite runs a shadow planner alongside the threshold
	// schemes and pins the schedule byte-identical.
	Observe bool

	// LogCap bounds the retained decision log (a ring, oldest dropped).
	// Default 32.
	LogCap int

	// InitialBF and InitialW seed the wrapped policy's tunables before
	// the first checkpoint. Defaults 1 and 1 (the paper's starting
	// point for both adaptive schemes).
	InitialBF float64
	InitialW  int
}

// withDefaults resolves the documented defaults.
func (c Config) withDefaults() Config {
	if c.Horizon <= 0 {
		c.Horizon = 2 * units.Hour
	}
	if len(c.BFGrid) == 0 {
		c.BFGrid = []float64{0.5, 0.75, 1}
	}
	if len(c.WGrid) == 0 {
		c.WGrid = []int{1, 2, 4}
	}
	if c.LogCap <= 0 {
		c.LogCap = 32
	}
	if c.InitialBF == 0 {
		c.InitialBF = 1
	}
	if c.InitialW == 0 {
		c.InitialW = 1
	}
	return c
}

// Decision records one checkpoint's what-if outcome: the incumbent and
// chosen (BF, W) pairs, their scores under the configured objective,
// the candidate census, and the tick's wall cost. Committed reports
// whether the chosen pair was actually applied (false for ties kept by
// hysteresis and always false in Observe mode). WallNS is machine
// timing and is excluded from cross-engine decision-log comparisons.
type Decision struct {
	At         units.Time `json:"at"`
	PrevBF     float64    `json:"prev_bf"`
	PrevW      int        `json:"prev_w"`
	BF         float64    `json:"bf"`
	W          int        `json:"w"`
	PrevScore  float64    `json:"prev_score"`
	Score      float64    `json:"score"`
	Candidates int        `json:"candidates"`
	Evaluated  int        `json:"evaluated"`
	Committed  bool       `json:"committed"`
	WallNS     int64      `json:"wall_ns"`
}

// latBounds are the rollout-latency histogram bucket upper bounds, in
// seconds (a +Inf bucket is implicit).
var latBounds = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5}

// HistBucket is one cumulative latency bucket (le in seconds).
type HistBucket struct {
	LE float64 `json:"le"`
	N  uint64  `json:"n"`
}

// Status is a point-in-time snapshot of a planner's activity, shaped
// for the daemon's /v1/tuner endpoint and the Prometheus exposition.
type Status struct {
	Objective  string       `json:"objective"`
	HorizonSec int64        `json:"horizon_sec"`
	BudgetNS   int64        `json:"budget_ns"`
	Observe    bool         `json:"observe"`
	Ticks      uint64       `json:"ticks"`
	Evaluated  uint64       `json:"candidates_evaluated"`
	Commits    uint64       `json:"commits"`
	Skipped    uint64       `json:"skipped"`
	LastDelta  float64      `json:"last_objective_delta"`
	LatCount   uint64       `json:"rollout_ticks"`
	LatSumSec  float64      `json:"rollout_seconds_sum"`
	LatBuckets []HistBucket `json:"rollout_seconds_buckets"`
	Decisions  []Decision   `json:"decisions"` // oldest first
}

// Reporter is implemented by schedulers that host a what-if planner
// and can snapshot its status (core.Tuner does).
type Reporter interface {
	WhatIfStatus() (Status, bool)
}

// pair is one candidate tunable setting.
type pair struct {
	bf float64
	w  int
}

// Planner evaluates the candidate grid at every checkpoint and decides
// the next tunables. It implements core.Monitor (so core.WhatIf slots
// it into a Tuner scheme) and the tuner's joint-proposal hook. A
// Planner instance belongs to one scheduler clone; core.Tuner
// deep-copies it on Clone (CloneMonitor), so forks accrue their own
// counters and the live engine's log is never written concurrently.
type Planner struct {
	cfg Config

	// Per-tick scratch, reused so a steady cadence allocates nothing.
	pairs []pair
	cands []sched.Scheduler

	ticks     uint64
	evals     uint64
	commits   uint64
	skips     uint64
	lastDelta float64

	decisions []Decision // ring of cfg.LogCap, oldest at dhead
	dhead     int

	latCount   uint64
	latSum     time.Duration
	latBuckets [len(latBounds) + 1]uint64
}

// NewPlanner builds a planner from the config (zero value = defaults).
func NewPlanner(cfg Config) *Planner {
	return &Planner{cfg: cfg.withDefaults()}
}

// Config returns the resolved configuration.
func (p *Planner) Config() Config { return p.cfg }

// SetBudget caps each tick's wall-clock spend after construction (the
// daemon applies its -whatif-budget flag to an already-parsed policy).
func (p *Planner) SetBudget(d time.Duration) { p.cfg.Budget = d }

// SetObserve toggles shadow mode after construction.
func (p *Planner) SetObserve(on bool) { p.cfg.Observe = on }

// SetWorkers rebounds the rollout fan-out after construction
// (0 = one per CPU).
func (p *Planner) SetWorkers(n int) { p.cfg.Workers = n }

// Describe implements core.Monitor (structurally).
func (p *Planner) Describe() string {
	return fmt.Sprintf("whatif(%s,horizon=%dm,grid=%dx%d)",
		p.cfg.Objective, p.cfg.Horizon/units.Minute, len(p.cfg.BFGrid), len(p.cfg.WGrid))
}

// Direction implements core.Monitor. The tuner's joint-proposal path
// supersedes it; it exists only to satisfy the interface and never
// fires a ±Δ walk.
func (p *Planner) Direction(sched.Env, sched.MetricsView) int { return 0 }

// SchemeName names the scheme in the tuner's policy name.
func (p *Planner) SchemeName() string { return "whatif" }

// InitialTunables reports the starting (BF, W) pair core.NewTuner
// applies to the wrapped policy.
func (p *Planner) InitialTunables() (float64, int) {
	return p.cfg.InitialBF, p.cfg.InitialW
}

// CloneMonitor implements core.MonitorCloner: a fresh planner with the
// same configuration and no accrued state. Nested engine forks (the
// fairness oracle, pass-defer snapshots) never fire checkpoints, so
// their planners stay inert; the deep copy exists so no fork can ever
// write this planner's counters or log.
func (p *Planner) CloneMonitor() any { return NewPlanner(p.cfg) }

// Propose is the tuner's joint-proposal hook (see core.Tuner): called
// at each checkpoint with the incumbent pair and a factory that builds
// an independent candidate scheduler at given tunables. It returns the
// pair to apply and whether to apply it.
//
// The incumbent is always candidate zero, so the engine's budget rule
// (the first candidate always runs) guarantees a baseline, and strict
// less-than scoring makes ties keep the incumbent. An environment
// without lookahead, an empty queue (nothing to repack — every rollout
// would tie), or a tick with no valid rollout all skip: the incumbent
// stays, and the skip is counted.
func (p *Planner) Propose(env sched.Env, _ sched.MetricsView, bf float64, w int,
	mk func(bf float64, w int) sched.Scheduler) (float64, int, bool) {
	p.ticks++
	la, ok := env.(sched.Lookaheader)
	if !ok {
		p.skips++
		return bf, w, false
	}
	if len(env.Queue()) == 0 {
		p.skips++
		return bf, w, false
	}

	start := time.Now()
	p.pairs = p.pairs[:0]
	p.pairs = append(p.pairs, pair{bf, w})
	for _, cb := range p.cfg.BFGrid {
		for _, cw := range p.cfg.WGrid {
			if cb == bf && cw == w {
				continue
			}
			p.pairs = append(p.pairs, pair{cb, cw})
		}
	}
	p.cands = p.cands[:0]
	for _, pr := range p.pairs {
		p.cands = append(p.cands, mk(pr.bf, pr.w))
	}

	rollouts, ok := la.Lookahead(p.cands, p.cfg.Horizon, p.cfg.Workers, p.cfg.Budget)
	if !ok {
		p.skips++
		return bf, w, false
	}

	best := -1
	var bestScore, incScore float64
	incValid := false
	valid := 0
	for i, r := range rollouts {
		if !r.Valid {
			continue
		}
		valid++
		s := Score(p.cfg.Objective, r)
		if i == 0 {
			incScore, incValid = s, true
		}
		if best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	p.evals += uint64(valid)
	p.observeLatency(time.Since(start))
	if best < 0 {
		p.skips++
		return bf, w, false
	}

	chosen := p.pairs[best]
	commit := best != 0
	if commit && incValid {
		gain := incScore - bestScore
		if gain <= p.cfg.MinGain*abs(incScore) {
			commit = false
			chosen = p.pairs[0]
		}
	}
	if incValid {
		p.lastDelta = incScore - bestScore
	}
	if p.cfg.Observe {
		commit = false
	}
	p.pushDecision(Decision{
		At:     env.Now(),
		PrevBF: bf, PrevW: w,
		BF: chosen.bf, W: chosen.w,
		PrevScore: incScore, Score: bestScore,
		Candidates: len(p.pairs), Evaluated: valid,
		Committed: commit,
		WallNS:    time.Since(start).Nanoseconds(),
	})
	if !commit {
		return bf, w, false
	}
	p.commits++
	return chosen.bf, chosen.w, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (p *Planner) observeLatency(d time.Duration) {
	p.latCount++
	p.latSum += d
	sec := d.Seconds()
	for i, le := range latBounds {
		if sec <= le {
			p.latBuckets[i]++
			return
		}
	}
	p.latBuckets[len(latBounds)]++
}

func (p *Planner) pushDecision(d Decision) {
	if len(p.decisions) < p.cfg.LogCap {
		p.decisions = append(p.decisions, d)
		return
	}
	p.decisions[p.dhead] = d
	p.dhead = (p.dhead + 1) % len(p.decisions)
}

// Decisions returns the retained decision log, oldest first, as a
// fresh slice.
func (p *Planner) Decisions() []Decision {
	out := make([]Decision, 0, len(p.decisions))
	out = append(out, p.decisions[p.dhead:]...)
	out = append(out, p.decisions[:p.dhead]...)
	return out
}

// Status snapshots the planner for reporting. The caller must hold
// whatever lock serializes the hosting engine (the daemon's session
// mutex); the planner itself is single-threaded within one engine.
func (p *Planner) Status() Status {
	st := Status{
		Objective:  p.cfg.Objective.String(),
		HorizonSec: int64(p.cfg.Horizon),
		BudgetNS:   p.cfg.Budget.Nanoseconds(),
		Observe:    p.cfg.Observe,
		Ticks:      p.ticks,
		Evaluated:  p.evals,
		Commits:    p.commits,
		Skipped:    p.skips,
		LastDelta:  p.lastDelta,
		LatCount:   p.latCount,
		LatSumSec:  p.latSum.Seconds(),
		Decisions:  p.Decisions(),
	}
	cum := uint64(0)
	for i, le := range latBounds {
		cum += p.latBuckets[i]
		st.LatBuckets = append(st.LatBuckets, HistBucket{LE: le, N: cum})
	}
	cum += p.latBuckets[len(latBounds)]
	st.LatBuckets = append(st.LatBuckets, HistBucket{LE: -1, N: cum}) // -1 renders as +Inf
	return st
}
