package whatif

import (
	"testing"

	"time"

	"amjs/internal/job"
	"amjs/internal/machine"
	"amjs/internal/sched"
	"amjs/internal/units"
)

func TestParseObjectiveRoundTrip(t *testing.T) {
	for _, o := range []Objective{AvgWait, BSLD, Utilization, Blend} {
		got, err := ParseObjective(o.String())
		if err != nil {
			t.Fatalf("ParseObjective(%q): %v", o.String(), err)
		}
		if got != o {
			t.Errorf("ParseObjective(%q) = %v, want %v", o.String(), got, o)
		}
	}
	for spec, want := range map[string]Objective{
		"wait": AvgWait, "slowdown": BSLD, "utilization": Utilization,
	} {
		got, err := ParseObjective(spec)
		if err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseObjective("latency"); err == nil {
		t.Error("ParseObjective accepted an unknown objective")
	}
}

func TestScoreOrderings(t *testing.T) {
	// A rollout with shorter waits, lower slowdown, and higher
	// utilization must score strictly better (lower) on every objective.
	good := sched.Rollout{
		Valid: true, Horizon: 2 * units.Hour,
		Started: 8, LeftQueued: 1, Completed: 5,
		WaitSum: 8 * 5 * units.Minute, BSLDSum: 9 * 1.2,
		UtilNodeSec: 0.9 * 512 * float64(2*units.Hour), TotalNodes: 512,
	}
	bad := good
	bad.WaitSum = 9 * units.Hour
	bad.BSLDSum = 9 * 8.0
	bad.UtilNodeSec = 0.4 * 512 * float64(2*units.Hour)
	for _, o := range []Objective{AvgWait, BSLD, Utilization, Blend} {
		if Score(o, good) >= Score(o, bad) {
			t.Errorf("%v: good rollout scored %g, bad %g (lower must win)",
				o, Score(o, good), Score(o, bad))
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	p := NewPlanner(Config{})
	cfg := p.Config()
	if cfg.Horizon != 2*units.Hour {
		t.Errorf("default horizon %v", cfg.Horizon)
	}
	if len(cfg.BFGrid) != 3 || len(cfg.WGrid) != 3 {
		t.Errorf("default grid %v × %v", cfg.BFGrid, cfg.WGrid)
	}
	if cfg.LogCap != 32 {
		t.Errorf("default log cap %d", cfg.LogCap)
	}
	if bf, w := p.InitialTunables(); bf != 1 || w != 1 {
		t.Errorf("default initial tunables (%g, %d)", bf, w)
	}
}

// fakeEnv is a minimal Env; fakeLookEnv additionally answers Lookahead
// with scripted rollouts keyed by candidate index.
type fakeEnv struct {
	now   units.Time
	queue []*job.Job
}

func (f *fakeEnv) Now() units.Time                      { return f.now }
func (f *fakeEnv) Machine() machine.Machine             { return nil }
func (f *fakeEnv) Queue() []*job.Job                    { return f.queue }
func (f *fakeEnv) Start(*job.Job) bool                  { return false }
func (f *fakeEnv) StartAt(*job.Job, int) bool           { return false }
func (f *fakeEnv) QueueDepthMinutes() float64           { return 0 }
func (f *fakeEnv) UtilWindowAvg(units.Duration) float64 { return 0 }

type fakeLookEnv struct {
	fakeEnv
	// score[i] becomes candidate i's average wait (minutes); -1 marks
	// the rollout invalid. Extra candidates beyond the script tie the
	// incumbent.
	scores []float64
	calls  int
	got    int // candidate count seen by the last Lookahead
}

func (f *fakeLookEnv) Lookahead(cands []sched.Scheduler, horizon units.Duration, workers int,
	budget time.Duration) ([]sched.Rollout, bool) {
	f.calls++
	f.got = len(cands)
	out := make([]sched.Rollout, len(cands))
	for i := range cands {
		s := 10.0
		if i < len(f.scores) {
			s = f.scores[i]
		}
		if s < 0 {
			continue // invalid rollout
		}
		out[i] = sched.Rollout{
			Valid: true, Horizon: horizon, Started: 1,
			WaitSum: units.Duration(s * float64(units.Minute)), TotalNodes: 1,
		}
	}
	return out, true
}

func queuedJob() *job.Job {
	return &job.Job{ID: 1, Submit: 0, Nodes: 1, Runtime: units.Hour, Walltime: units.Hour}
}

func mkFactory(t *testing.T) func(float64, int) sched.Scheduler {
	return func(float64, int) sched.Scheduler { return nil }
}

func TestProposeSkipsWithoutLookahead(t *testing.T) {
	p := NewPlanner(Config{})
	env := &fakeEnv{queue: []*job.Job{queuedJob()}}
	if _, _, commit := p.Propose(env, env, 1, 1, mkFactory(t)); commit {
		t.Error("committed against an env without lookahead")
	}
	if st := p.Status(); st.Skipped != 1 || st.Ticks != 1 {
		t.Errorf("skips=%d ticks=%d, want 1/1", st.Skipped, st.Ticks)
	}
}

func TestProposeSkipsEmptyQueue(t *testing.T) {
	p := NewPlanner(Config{})
	env := &fakeLookEnv{}
	if _, _, commit := p.Propose(env, env, 1, 1, mkFactory(t)); commit {
		t.Error("committed with an empty queue")
	}
	if env.calls != 0 {
		t.Error("ran rollouts with an empty queue")
	}
	if st := p.Status(); st.Skipped != 1 {
		t.Errorf("skips=%d, want 1", st.Skipped)
	}
}

func TestProposeCommitsBestCandidate(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1, 2}})
	env := &fakeLookEnv{fakeEnv: fakeEnv{now: units.Time(3 * units.Hour), queue: []*job.Job{queuedJob()}}}
	// Incumbent (1,1) scores 10; candidate 2 scores 4 and must win.
	env.scores = []float64{10, 8, 4, 9}
	bf, w, commit := p.Propose(env, env, 1, 1, mkFactory(t))
	if !commit {
		t.Fatal("no commit despite a strictly better candidate")
	}
	// Grid is incumbent-first, then (0.5,1),(0.5,2),(1,2) — index 2 is (0.5,2).
	if bf != 0.5 || w != 2 {
		t.Errorf("committed (%g,%d), want (0.5,2)", bf, w)
	}
	if env.got != 4 {
		t.Errorf("planner offered %d candidates, want 4 (incumbent + 3)", env.got)
	}
	st := p.Status()
	if st.Commits != 1 || st.Evaluated != 4 {
		t.Errorf("commits=%d evaluated=%d", st.Commits, st.Evaluated)
	}
	d := st.Decisions[0]
	if d.At != units.Time(3*units.Hour) || !d.Committed || d.PrevBF != 1 || d.PrevW != 1 ||
		d.BF != 0.5 || d.W != 2 || d.PrevScore != 10 || d.Score != 4 {
		t.Errorf("decision %+v", d)
	}
}

func TestProposeTieKeepsIncumbent(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1}})
	env := &fakeLookEnv{fakeEnv: fakeEnv{queue: []*job.Job{queuedJob()}}}
	env.scores = []float64{5, 5}
	if bf, w, commit := p.Propose(env, env, 1, 1, mkFactory(t)); commit {
		t.Errorf("tie committed (%g,%d); strict < must keep the incumbent", bf, w)
	}
	st := p.Status()
	if st.Commits != 0 || len(st.Decisions) != 1 || st.Decisions[0].Committed {
		t.Errorf("tie status %+v", st)
	}
}

func TestProposeMinGainHysteresis(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1}, MinGain: 0.2})
	env := &fakeLookEnv{fakeEnv: fakeEnv{queue: []*job.Job{queuedJob()}}}
	// 10% better than the incumbent — under the 20% gate, no switch.
	env.scores = []float64{10, 9}
	if _, _, commit := p.Propose(env, env, 1, 1, mkFactory(t)); commit {
		t.Error("committed a gain below MinGain")
	}
	// 50% better clears the gate.
	env.scores = []float64{10, 5}
	if _, _, commit := p.Propose(env, env, 1, 1, mkFactory(t)); !commit {
		t.Error("refused a gain well above MinGain")
	}
}

func TestProposeObserveNeverCommits(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1}, Observe: true})
	env := &fakeLookEnv{fakeEnv: fakeEnv{queue: []*job.Job{queuedJob()}}}
	env.scores = []float64{10, 1}
	if _, _, commit := p.Propose(env, env, 1, 1, mkFactory(t)); commit {
		t.Error("observe mode committed")
	}
	st := p.Status()
	if st.Commits != 0 || st.Evaluated != 2 || len(st.Decisions) != 1 {
		t.Errorf("observe status commits=%d evaluated=%d decisions=%d",
			st.Commits, st.Evaluated, len(st.Decisions))
	}
	if d := st.Decisions[0]; d.Committed || d.BF != 0.5 {
		t.Errorf("observe decision %+v — should log the would-be winner uncommitted", d)
	}
}

func TestProposeInvalidIncumbentStillSwitches(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1}})
	env := &fakeLookEnv{fakeEnv: fakeEnv{queue: []*job.Job{queuedJob()}}}
	env.scores = []float64{-1, 3} // incumbent rollout invalid
	if _, _, commit := p.Propose(env, env, 1, 1, mkFactory(t)); !commit {
		t.Error("no commit when only a non-incumbent rollout is valid")
	}
}

func TestProposeAllInvalidSkips(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1}})
	env := &fakeLookEnv{fakeEnv: fakeEnv{queue: []*job.Job{queuedJob()}}}
	env.scores = []float64{-1, -1}
	if _, _, commit := p.Propose(env, env, 1, 1, mkFactory(t)); commit {
		t.Error("committed with no valid rollout")
	}
	if st := p.Status(); st.Skipped != 1 || len(st.Decisions) != 0 {
		t.Errorf("skips=%d decisions=%d", st.Skipped, len(st.Decisions))
	}
}

func TestDecisionRing(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1}, LogCap: 3})
	env := &fakeLookEnv{fakeEnv: fakeEnv{queue: []*job.Job{queuedJob()}}}
	env.scores = []float64{5, 5} // ties: every tick logs, nothing commits
	for i := 0; i < 5; i++ {
		env.now = units.Time(i) * units.Time(units.Hour)
		p.Propose(env, env, 1, 1, mkFactory(t))
	}
	ds := p.Decisions()
	if len(ds) != 3 {
		t.Fatalf("ring holds %d decisions, cap 3", len(ds))
	}
	for i, d := range ds {
		if want := units.Time(i+2) * units.Time(units.Hour); d.At != want {
			t.Errorf("decision %d at %v, want %v (oldest-first after wrap)", i, d.At, want)
		}
	}
}

func TestCloneMonitorIsFresh(t *testing.T) {
	p := NewPlanner(Config{BFGrid: []float64{0.5, 1}, WGrid: []int{1}})
	env := &fakeLookEnv{fakeEnv: fakeEnv{queue: []*job.Job{queuedJob()}}}
	env.scores = []float64{10, 1}
	p.Propose(env, env, 1, 1, mkFactory(t))
	c, ok := p.CloneMonitor().(*Planner)
	if !ok {
		t.Fatal("CloneMonitor did not return a *Planner")
	}
	if c == p {
		t.Fatal("CloneMonitor returned the receiver")
	}
	st := c.Status()
	if st.Ticks != 0 || st.Commits != 0 || len(st.Decisions) != 0 {
		t.Errorf("clone carries accrued state: %+v", st)
	}
	if c.Config().Horizon != p.Config().Horizon {
		t.Error("clone lost the configuration")
	}
}

func TestStatusHistogramCumulative(t *testing.T) {
	p := NewPlanner(Config{})
	p.observeLatency(500 * time.Microsecond)
	p.observeLatency(3 * time.Millisecond)
	p.observeLatency(2 * time.Second) // overflow bucket
	st := p.Status()
	if st.LatCount != 3 {
		t.Fatalf("LatCount %d", st.LatCount)
	}
	if n := len(st.LatBuckets); n != len(latBounds)+1 {
		t.Fatalf("%d buckets, want %d", n, len(latBounds)+1)
	}
	last := st.LatBuckets[len(st.LatBuckets)-1]
	if last.LE != -1 || last.N != 3 {
		t.Errorf("+Inf bucket %+v, want cumulative 3", last)
	}
	for i := 1; i < len(st.LatBuckets); i++ {
		if st.LatBuckets[i].N < st.LatBuckets[i-1].N {
			t.Fatalf("histogram not cumulative at bucket %d", i)
		}
	}
	if st.LatBuckets[0].N != 1 {
		t.Errorf("first bucket %d, want 1 (the 500µs sample)", st.LatBuckets[0].N)
	}
}
