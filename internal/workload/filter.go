package workload

import (
	"fmt"
	"sort"

	"amjs/internal/job"
	"amjs/internal/units"
)

// Slice returns the jobs submitted in [from, to), cloned and rebased so
// the earliest kept job submits at 0 — the standard way to cut a
// month-long trace into the windows the paper's figures plot.
func Slice(jobs []*job.Job, from, to units.Time) []*job.Job {
	var out []*job.Job
	for _, j := range jobs {
		if j.Submit >= from && j.Submit < to {
			out = append(out, j.Clone())
		}
	}
	Rebase(out)
	return out
}

// FilterMaxNodes drops jobs requesting more than maxNodes (cloning the
// survivors), e.g. to replay a big-machine trace on a smaller model.
func FilterMaxNodes(jobs []*job.Job, maxNodes int) []*job.Job {
	var out []*job.Job
	for _, j := range jobs {
		if j.Nodes <= maxNodes {
			out = append(out, j.Clone())
		}
	}
	return out
}

// ScaleLoad changes the offered load of a trace by scaling every
// interarrival gap by 1/factor (factor 2 → twice the arrival rate →
// roughly twice the load). Runtimes and sizes are untouched; submission
// order is preserved. factor must be positive.
func ScaleLoad(jobs []*job.Job, factor float64) ([]*job.Job, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("workload: non-positive load factor %v", factor)
	}
	sorted := job.CloneAll(jobs)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Submit != sorted[b].Submit {
			return sorted[a].Submit < sorted[b].Submit
		}
		return sorted[a].ID < sorted[b].ID
	})
	var prevOld, prevNew units.Time
	for _, j := range sorted {
		gap := float64(j.Submit - prevOld)
		prevOld = j.Submit
		prevNew = prevNew.Add(units.Duration(gap/factor + 0.5))
		j.Submit = prevNew
	}
	Rebase(sorted)
	return sorted, nil
}

// SplitByUser groups jobs by submitting user (jobs are shared, not
// cloned).
func SplitByUser(jobs []*job.Job) map[string][]*job.Job {
	out := make(map[string][]*job.Job)
	for _, j := range jobs {
		out[j.User] = append(out[j.User], j)
	}
	return out
}

// ArrivalHistogram counts submissions per bucket of the given width
// from time zero — the quick way to eyeball burstiness and the
// diurnal cycle.
func ArrivalHistogram(jobs []*job.Job, bucket units.Duration) []int {
	if bucket <= 0 || len(jobs) == 0 {
		return nil
	}
	var maxT units.Time
	for _, j := range jobs {
		if j.Submit > maxT {
			maxT = j.Submit
		}
	}
	counts := make([]int, int(maxT/units.Time(bucket))+1)
	for _, j := range jobs {
		counts[int(j.Submit/units.Time(bucket))]++
	}
	return counts
}
