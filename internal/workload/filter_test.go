package workload

import (
	"math"
	"testing"

	"amjs/internal/job"
	"amjs/internal/units"
)

func mkJobs() []*job.Job {
	return []*job.Job{
		{ID: 1, User: "a", Submit: 100, Nodes: 64, Walltime: 100, Runtime: 50},
		{ID: 2, User: "b", Submit: 200, Nodes: 512, Walltime: 100, Runtime: 50},
		{ID: 3, User: "a", Submit: 300, Nodes: 128, Walltime: 100, Runtime: 50},
		{ID: 4, User: "c", Submit: 400, Nodes: 32, Walltime: 100, Runtime: 50},
	}
}

func TestSlice(t *testing.T) {
	jobs := mkJobs()
	got := Slice(jobs, 150, 350)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Fatalf("Slice wrong: %v", got)
	}
	if got[0].Submit != 0 || got[1].Submit != 100 {
		t.Errorf("Slice not rebased: %v %v", got[0].Submit, got[1].Submit)
	}
	// Originals untouched.
	if jobs[1].Submit != 200 {
		t.Error("Slice mutated input")
	}
	if out := Slice(jobs, 900, 1000); len(out) != 0 {
		t.Errorf("empty slice returned %d jobs", len(out))
	}
}

func TestFilterMaxNodes(t *testing.T) {
	got := FilterMaxNodes(mkJobs(), 128)
	if len(got) != 3 {
		t.Fatalf("FilterMaxNodes kept %d", len(got))
	}
	for _, j := range got {
		if j.Nodes > 128 {
			t.Errorf("kept %d-node job", j.Nodes)
		}
	}
}

func TestScaleLoad(t *testing.T) {
	jobs := mkJobs()
	got, err := ScaleLoad(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Gaps 100,100,100 become 50,50,50 after the first submit rebases to 0.
	wants := []units.Time{0, 50, 100, 150}
	for i, j := range got {
		if j.Submit != wants[i] {
			t.Errorf("job %d submit = %v, want %v", j.ID, j.Submit, wants[i])
		}
	}
	// Halving the rate doubles the gaps.
	got, err = ScaleLoad(jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got[3].Submit != 600 {
		t.Errorf("slowdown scale: last submit = %v, want 600", got[3].Submit)
	}
	if _, err := ScaleLoad(jobs, 0); err == nil {
		t.Error("zero factor accepted")
	}
	// Original untouched.
	if jobs[0].Submit != 100 {
		t.Error("ScaleLoad mutated input")
	}
}

func TestScaleLoadChangesOfferedLoad(t *testing.T) {
	cfg := Mini(5)
	cfg.MaxJobs = 150
	jobs, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	before := Analyze(jobs, 512).OfferedLoad
	scaled, err := ScaleLoad(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	after := Analyze(scaled, 512).OfferedLoad
	if after < before*1.5 {
		t.Errorf("load %.2f -> %.2f; expected ~2x", before, after)
	}
}

func TestSplitByUser(t *testing.T) {
	groups := SplitByUser(mkJobs())
	if len(groups) != 3 || len(groups["a"]) != 2 || len(groups["c"]) != 1 {
		t.Errorf("SplitByUser wrong: %v", groups)
	}
}

func TestArrivalHistogram(t *testing.T) {
	h := ArrivalHistogram(mkJobs(), 150)
	// Buckets: [0,150):1, [150,300):1, [300,450):2
	if len(h) != 3 || h[0] != 1 || h[1] != 1 || h[2] != 2 {
		t.Errorf("histogram = %v", h)
	}
	if ArrivalHistogram(nil, 100) != nil {
		t.Error("empty histogram not nil")
	}
	if ArrivalHistogram(mkJobs(), 0) != nil {
		t.Error("zero bucket not nil")
	}
}

// The generator's diurnal cycle must produce more daytime than
// nighttime arrivals, and the weekend factor must thin days 6–7.
func TestGeneratorCycles(t *testing.T) {
	cfg := Mini(9)
	cfg.Horizon = 14 * units.Day
	cfg.Arrival.MeanInterarrival = 5 * units.Minute
	cfg.Arrival.DiurnalAmplitude = 0.8
	cfg.Arrival.WeekendFactor = 0.3
	cfg.Arrival.BurstProb = 0 // isolate the cycles from burst noise
	jobs, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	day, night := 0, 0
	weekday, weekend := 0, 0
	for _, j := range jobs {
		hourOfDay := float64(j.Submit%units.Time(units.Day)) / float64(units.Hour)
		// The rate peaks at 12h (sin phase -0.25 day): count 6-18 as day.
		if hourOfDay >= 6 && hourOfDay < 18 {
			day++
		} else {
			night++
		}
		dayIdx := int(j.Submit/units.Time(units.Day)) % 7
		if dayIdx >= 5 {
			weekend++
		} else {
			weekday++
		}
	}
	if day <= night {
		t.Errorf("diurnal cycle missing: day=%d night=%d", day, night)
	}
	// Per-day rates: weekdays should far outpace weekend days.
	weekdayRate := float64(weekday) / 5
	weekendRate := float64(weekend) / 2
	if weekendRate > weekdayRate*0.7 {
		t.Errorf("weekend thinning missing: weekday/day=%.0f weekend/day=%.0f", weekdayRate, weekendRate)
	}
	if math.IsNaN(weekdayRate) {
		t.Fatal("no jobs generated")
	}
}
