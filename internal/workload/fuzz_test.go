package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// FuzzSWF drives the SWF parser with arbitrary bytes and asserts its
// contract: every failure is a located *SWFError (or a wrapped scanner
// error), and every success yields Validate-clean jobs sorted by
// (submit, id) with submit times rebased to zero — which must then
// survive a WriteSWF/ReadSWF round trip unchanged.
func FuzzSWF(f *testing.F) {
	f.Add([]byte(SampleSWF))
	f.Add([]byte("; comment only\n\n"))
	f.Add([]byte("1 0 -1 100 4 -1 -1 4 200 -1 1 7 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 0 -1 100 4\n"))                                      // short record
	f.Add([]byte("x 0 -1 100 4 -1 -1 4 200 -1 1 7 -1 -1 -1 -1 -1 -1\n")) // non-integer
	f.Add([]byte("1 0 -1 -5 4 -1 -1 4 200 -1 1 7 -1 -1 -1 -1 -1 -1\n"))  // below -1
	f.Add([]byte("2 50 -1 10 4 -1 -1 4 5 -1 0 7 -1 -1 -1 -1 -1 -1\n" +   // walltime < runtime
		"1 50 -1 10 8 -1 -1 8 5 -1 1 7 -1 -1 -1 -1 -1 -1\n")) // same submit, lower id
	f.Add([]byte("-3 0 -1 10 4 -1 -1 4 20 -1 1 7 -1 -1 -1 -1 -1 -1\n")) // unusable id
	f.Add([]byte("1 0 -1 10 9223372036854775807 -1 -1 -1 20 -1 1 7 -1 -1 -1 -1 -1 -1\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, skipped, err := ReadSWF(bytes.NewReader(data), SWFOptions{ProcsPerNode: 4, MaxNodes: 1 << 20})
		if err != nil {
			var se *SWFError
			switch {
			case errors.As(err, &se):
				if se.Line < 1 {
					t.Fatalf("SWFError with non-positive line: %v", err)
				}
			case strings.Contains(err.Error(), "reading SWF"):
				// scanner-level failure (e.g. over-long line) — fine
			default:
				t.Fatalf("error is neither *SWFError nor a scanner error: %v", err)
			}
			return
		}
		if skipped < 0 {
			t.Fatalf("negative skip count %d", skipped)
		}
		for i, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("parsed job fails validation: %v", err)
			}
			if j.ID <= 0 {
				t.Fatalf("parsed job has unusable id %d", j.ID)
			}
			if i > 0 {
				p := jobs[i-1]
				if j.Submit < p.Submit || (j.Submit == p.Submit && j.ID < p.ID) {
					t.Fatalf("jobs out of (submit, id) order at %d: (%d,%d) after (%d,%d)",
						i, j.Submit, j.ID, p.Submit, p.ID)
				}
			}
		}
		if len(jobs) > 0 && jobs[0].Submit != 0 {
			t.Fatalf("submit times not rebased: first job submits at %d", jobs[0].Submit)
		}

		// Round trip: what WriteSWF renders, ReadSWF must reproduce.
		var buf bytes.Buffer
		if err := WriteSWF(&buf, jobs, "round trip"); err != nil {
			t.Fatalf("WriteSWF: %v", err)
		}
		again, skip2, err := ReadSWF(&buf, SWFOptions{})
		if err != nil {
			t.Fatalf("re-reading written trace: %v", err)
		}
		if skip2 != 0 || len(again) != len(jobs) {
			t.Fatalf("round trip kept %d jobs (skipped %d), want %d", len(again), skip2, len(jobs))
		}
		for i, w := range jobs {
			g := again[i]
			same := g.ID == w.ID && g.User == w.User && g.Submit == w.Submit &&
				g.Nodes == w.Nodes && g.Walltime == w.Walltime && g.Runtime == w.Runtime
			if !same {
				t.Fatalf("round trip changed job %d:\n got %+v\nwant %+v", w.ID, *g, *w)
			}
		}
	})
}
