package workload

import (
	"fmt"
	"math"
	"sort"

	"amjs/internal/job"
	"amjs/internal/rng"
	"amjs/internal/units"
)

// SizeWeight assigns a sampling weight to a node-count request.
type SizeWeight struct {
	Nodes  int
	Weight float64
}

// ArrivalConfig shapes the job arrival process: a nonhomogeneous Poisson
// process with diurnal and weekly cycles, plus occasional bursts
// (campaigns of related submissions close together), which are what
// stress a queue and expose the differences between scheduling policies.
type ArrivalConfig struct {
	MeanInterarrival units.Duration // base mean spacing at cycle average
	DiurnalAmplitude float64        // 0..1: day/night swing of the rate
	WeekendFactor    float64        // rate multiplier on days 6 and 7 (0 < f <= 1)
	BurstProb        float64        // probability an arrival opens a burst
	MeanBurstSize    int            // mean extra jobs per burst
	BurstSpread      units.Duration // window the burst arrivals land in
}

// RuntimeConfig shapes actual job runtimes: lognormal, truncated.
type RuntimeConfig struct {
	MedianSeconds float64        // exp(mu) of the lognormal
	Sigma         float64        // lognormal shape
	Min           units.Duration // floor
	Max           units.Duration // ceiling (site walltime limit)
}

// WalltimeConfig shapes user walltime requests relative to runtimes.
// Users are modelled as a mixture: a fraction request (close to) the
// exact runtime, the rest pad by a random factor — reproducing the
// well-documented overestimation in production logs.
type WalltimeConfig struct {
	ExactProb   float64        // request == runtime (rounded up)
	SmallPadMax float64        // pad factor drawn U(1, SmallPadMax) with prob (1-ExactProb)/2
	LargePadMax float64        // pad factor drawn U(SmallPadMax, LargePadMax) otherwise
	Granularity units.Duration // requests round up to this grid
	Min         units.Duration
	Max         units.Duration
}

// Config fully specifies a synthetic workload.
type Config struct {
	Name    string
	Seed    int64
	Horizon units.Duration // arrivals generated in [0, Horizon]
	MaxJobs int            // hard cap; 0 means no cap

	MachineNodes int // target machine size (for validation and load accounting)
	Sizes        []SizeWeight
	OddSizeProb  float64 // probability a request is shrunk off its partition size

	Arrival  ArrivalConfig
	Runtime  RuntimeConfig
	Walltime WalltimeConfig

	Users    int     // user population
	UserSkew float64 // Zipf skew of submissions across users
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("workload: non-positive horizon")
	case c.MachineNodes <= 0:
		return fmt.Errorf("workload: non-positive machine size")
	case len(c.Sizes) == 0:
		return fmt.Errorf("workload: no size distribution")
	case c.Arrival.MeanInterarrival <= 0:
		return fmt.Errorf("workload: non-positive mean interarrival")
	case c.Arrival.DiurnalAmplitude < 0 || c.Arrival.DiurnalAmplitude > 1:
		return fmt.Errorf("workload: diurnal amplitude %v outside [0,1]", c.Arrival.DiurnalAmplitude)
	case c.Arrival.WeekendFactor <= 0 || c.Arrival.WeekendFactor > 1:
		return fmt.Errorf("workload: weekend factor %v outside (0,1]", c.Arrival.WeekendFactor)
	case c.Runtime.MedianSeconds <= 0 || c.Runtime.Sigma < 0:
		return fmt.Errorf("workload: bad runtime distribution")
	case c.Runtime.Min <= 0 || c.Runtime.Max < c.Runtime.Min:
		return fmt.Errorf("workload: bad runtime bounds")
	case c.Walltime.Max < c.Runtime.Max:
		return fmt.Errorf("workload: walltime cap below runtime cap")
	case c.Users <= 0:
		return fmt.Errorf("workload: no users")
	}
	for _, s := range c.Sizes {
		if s.Nodes <= 0 || s.Nodes > c.MachineNodes {
			return fmt.Errorf("workload: size %d outside machine (%d nodes)", s.Nodes, c.MachineNodes)
		}
		if s.Weight < 0 {
			return fmt.Errorf("workload: negative weight for size %d", s.Nodes)
		}
	}
	return nil
}

// Generate synthesizes the workload. Jobs are returned sorted by submit
// time with IDs assigned 1..n in that order, and every job passes
// job.Validate.
func (c *Config) Generate() ([]*job.Job, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(c.Seed)
	arrivalRng := root.Split("arrivals")
	sizeRng := root.Split("sizes")
	runRng := root.Split("runtimes")
	wallRng := root.Split("walltimes")
	userRng := root.Split("users")
	burstRng := root.Split("bursts")

	weights := make([]float64, len(c.Sizes))
	for i, s := range c.Sizes {
		weights[i] = s.Weight
	}
	sizeDist := rng.NewWeighted(weights)
	userDist := rng.NewZipf(c.Users, c.UserSkew)

	var submits []units.Time
	baseRate := 1 / float64(c.Arrival.MeanInterarrival)
	maxRate := baseRate * (1 + c.Arrival.DiurnalAmplitude)
	t := 0.0
	capReached := func() bool { return c.MaxJobs > 0 && len(submits) >= c.MaxJobs }
	for !capReached() {
		t += arrivalRng.Exp(1 / maxRate)
		if units.Duration(t) > c.Horizon {
			break
		}
		if arrivalRng.Float64() >= c.rateAt(units.Time(t))/maxRate {
			continue // thinned
		}
		submits = append(submits, units.Time(t))
		if c.Arrival.BurstProb > 0 && burstRng.Bool(c.Arrival.BurstProb) {
			n := 1 + burstRng.Intn(2*c.Arrival.MeanBurstSize)
			for k := 0; k < n && !capReached(); k++ {
				off := units.Duration(burstRng.Float64() * float64(c.Arrival.BurstSpread))
				st := units.Time(t).Add(off)
				if units.Duration(st) <= c.Horizon {
					submits = append(submits, st)
				}
			}
		}
	}
	sort.Slice(submits, func(i, j int) bool { return submits[i] < submits[j] })

	jobs := make([]*job.Job, 0, len(submits))
	for i, submit := range submits {
		nodes := c.Sizes[sizeDist.Draw(sizeRng)].Nodes
		if c.OddSizeProb > 0 && sizeRng.Bool(c.OddSizeProb) && nodes > 1 {
			// An "odd" request below the partition size, causing internal
			// fragmentation as on the real machine.
			nodes = 1 + int(float64(nodes-1)*sizeRng.Uniform(0.55, 1.0))
		}
		runtime := units.Duration(runRng.LogNormal(math.Log(c.Runtime.MedianSeconds), c.Runtime.Sigma)).
			Clamp(c.Runtime.Min, c.Runtime.Max)
		walltime := c.drawWalltime(wallRng, runtime)
		j := &job.Job{
			ID:       i + 1,
			User:     fmt.Sprintf("u%d", userDist.Draw(userRng)+1),
			Submit:   submit,
			Nodes:    nodes,
			Walltime: walltime,
			Runtime:  runtime,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: generated invalid job: %w", err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// rateAt is the arrival intensity at simulated instant t.
func (c *Config) rateAt(t units.Time) float64 {
	base := 1 / float64(c.Arrival.MeanInterarrival)
	day := float64(t%units.Time(units.Day)) / float64(units.Day)
	rate := base * (1 + c.Arrival.DiurnalAmplitude*math.Sin(2*math.Pi*(day-0.25)))
	weekday := int(t/units.Time(units.Day)) % 7
	if weekday >= 5 {
		rate *= c.Arrival.WeekendFactor
	}
	return rate
}

// drawWalltime samples a user walltime request for the given runtime.
func (c *Config) drawWalltime(r *rng.Source, runtime units.Duration) units.Duration {
	w := &c.Walltime
	factor := 1.0
	switch {
	case r.Bool(w.ExactProb):
		factor = 1.0
	case r.Bool(0.5):
		factor = r.Uniform(1, w.SmallPadMax)
	default:
		factor = r.Uniform(w.SmallPadMax, w.LargePadMax)
	}
	wall := units.Duration(float64(runtime) * factor)
	if g := w.Granularity; g > 0 {
		wall = (wall + g - 1) / g * g
	}
	wall = wall.Clamp(w.Min, w.Max)
	if wall < runtime {
		wall = runtime // never truncate the job
	}
	return wall
}

// Intrepid is a workload preset calibrated to the paper's evaluation
// platform: the 40,960-node Intrepid Blue Gene/P, with partition-
// quantized job sizes, heavy-tailed runtimes, and a month-long horizon.
// The offered load (~80%) queues the machine without saturating it.
func Intrepid(seed int64) Config {
	return Config{
		Name:         "intrepid-month",
		Seed:         seed,
		Horizon:      30 * units.Day,
		MachineNodes: 40960,
		Sizes: []SizeWeight{
			{512, 0.34}, {1024, 0.27}, {2048, 0.17}, {4096, 0.12},
			{8192, 0.06}, {16384, 0.03}, {32768, 0.008}, {40960, 0.002},
		},
		OddSizeProb: 0.15,
		Arrival: ArrivalConfig{
			MeanInterarrival: 14 * units.Minute,
			DiurnalAmplitude: 0.35,
			WeekendFactor:    0.6,
			BurstProb:        0.008,
			MeanBurstSize:    90,
			BurstSpread:      90 * units.Minute,
		},
		Runtime: RuntimeConfig{
			MedianSeconds: 2400,
			Sigma:         1.5,
			Min:           2 * units.Minute,
			Max:           12 * units.Hour,
		},
		Walltime: WalltimeConfig{
			ExactProb:   0.15,
			SmallPadMax: 2,
			LargePadMax: 10,
			Granularity: 5 * units.Minute,
			Min:         10 * units.Minute,
			Max:         24 * units.Hour,
		},
		Users:    60,
		UserSkew: 1.2,
	}
}

// IntrepidYear is the Intrepid preset stretched to a year-long horizon,
// the scale the production trace replays cover. Capped at 50k jobs it
// is the calibrated trace behind BenchmarkSimAtScale; uncapped it
// yields ~65k jobs. Same distributions as Intrepid, so the offered
// load stays at the paper's ~80%.
func IntrepidYear(seed int64) Config {
	c := Intrepid(seed)
	c.Name = "intrepid-year"
	c.Horizon = 365 * units.Day
	c.MaxJobs = 50_000
	return c
}

// IntrepidHeavy is the Intrepid preset with a heavier, burstier load —
// the "different workload" second trace used for Table II.
func IntrepidHeavy(seed int64) Config {
	c := Intrepid(seed)
	c.Name = "intrepid-heavy"
	c.Arrival.MeanInterarrival = 14 * units.Minute
	c.Arrival.BurstProb = 0.009
	return c
}

// Mini is a small, fast preset on a 512-node (8-midplane) machine for
// tests and examples.
func Mini(seed int64) Config {
	return Config{
		Name:         "mini",
		Seed:         seed,
		Horizon:      4 * units.Day,
		MachineNodes: 512,
		Sizes: []SizeWeight{
			{64, 0.35}, {128, 0.30}, {256, 0.20}, {512, 0.15},
		},
		OddSizeProb: 0.15,
		Arrival: ArrivalConfig{
			MeanInterarrival: 30 * units.Minute,
			DiurnalAmplitude: 0.4,
			WeekendFactor:    0.7,
			BurstProb:        0.03,
			MeanBurstSize:    6,
			BurstSpread:      20 * units.Minute,
		},
		Runtime: RuntimeConfig{
			MedianSeconds: 1200,
			Sigma:         1.3,
			Min:           units.Minute,
			Max:           6 * units.Hour,
		},
		Walltime: WalltimeConfig{
			ExactProb:   0.15,
			SmallPadMax: 2,
			LargePadMax: 8,
			Granularity: 5 * units.Minute,
			Min:         10 * units.Minute,
			Max:         12 * units.Hour,
		},
		Users:    12,
		UserSkew: 1.1,
	}
}
