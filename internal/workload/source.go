package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"amjs/internal/job"
	"amjs/internal/rng"
	"amjs/internal/units"
)

// Source delivers a job trace one job at a time, in nondecreasing
// submit order. It is the streaming counterpart of a materialized
// []*job.Job slice: a year-long production trace can be replayed in
// O(live window) memory because the simulator only ever needs the jobs
// that have arrived and not yet completed.
//
// Next returns (nil, io.EOF) when the trace is exhausted. Any other
// error aborts the replay.
type Source interface {
	Next() (*job.Job, error)
}

// Collect drains a source into a slice — the bridge back to every API
// that wants a materialized trace. Mostly useful in tests and small
// traces; at the million-job scale, feed the source to sim.RunStream
// instead.
func Collect(src Source) ([]*job.Job, error) {
	var jobs []*job.Job
	for {
		j, err := src.Next()
		if err == io.EOF {
			return jobs, nil
		}
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
}

// SliceSource adapts an already-materialized, submit-ordered trace to
// the Source interface. The jobs are handed out as-is (not cloned).
func SliceSource(jobs []*job.Job) Source {
	return &sliceSource{jobs: jobs}
}

type sliceSource struct {
	jobs []*job.Job
	i    int
}

// Next implements Source.
func (s *sliceSource) Next() (*job.Job, error) {
	if s.i >= len(s.jobs) {
		return nil, io.EOF
	}
	j := s.jobs[s.i]
	s.i++
	return j, nil
}

// DefaultSWFSlack is the reorder window NewSWFSource tolerates: records
// whose submit times are out of order by less than this are silently
// re-sorted in the streaming buffer. Parallel Workloads Archive traces
// are sorted or very nearly so; an hour absorbs every known case while
// keeping the buffer a sliver of the trace.
const DefaultSWFSlack = units.Hour

// SWFSource streams an SWF trace from an io.Reader without
// materializing it: jobs come out in (submit, ID) order with submit
// times rebased to zero, exactly as ReadSWF orders them, but only the
// records inside the reorder window are held in memory.
//
// Out-of-order records are tolerated up to the slack: a record is
// released only once every record read so far submits at least slack
// later (or the trace ended), so any two records whose submit times
// disagree with file order by less than the slack are emitted in sorted
// order. A record arriving more than the slack out of order is an
// error — streaming cannot sort what it has already emitted.
type SWFSource struct {
	sc      *bufio.Scanner
	ppn     int
	opt     SWFOptions
	slack   units.Duration
	lineNo  int
	skipped int

	buf      swfBuf // reorder buffer: min-heap by (submit, ID)
	maxSeen  units.Time
	lastOut  units.Time
	base     units.Time
	haveBase bool
	eof      bool
	inOrder  bool // records parsed so far were already (submit, ID) sorted
	prevSub  units.Time
	prevID   int
	haveAny  bool
}

// NewSWFSource returns a streaming SWF parser over r. A slack of 0
// selects DefaultSWFSlack.
func NewSWFSource(r io.Reader, opt SWFOptions, slack units.Duration) *SWFSource {
	ppn := opt.ProcsPerNode
	if ppn <= 0 {
		ppn = 1
	}
	if slack <= 0 {
		slack = DefaultSWFSlack
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &SWFSource{sc: sc, ppn: ppn, opt: opt, slack: slack, inOrder: true}
}

// Skipped reports how many unusable records have been dropped so far
// (final once Next has returned io.EOF).
func (s *SWFSource) Skipped() int { return s.skipped }

// InOrder reports whether every record parsed so far was already in
// (submit, ID) order — true for the Parallel Workloads Archive common
// case, in which the reorder buffer holds exactly one record at a time.
func (s *SWFSource) InOrder() bool { return s.inOrder }

// Next implements Source.
func (s *SWFSource) Next() (*job.Job, error) {
	// Read ahead until the earliest buffered record is provably safe to
	// release: nothing later in the file may precede it by the slack
	// contract.
	for !s.eof && (s.buf.Len() == 0 || s.maxSeen < s.buf.min().Submit.Add(s.slack)) {
		j, err := s.scanRecord()
		if err != nil {
			return nil, err
		}
		if j == nil {
			continue // skipped or EOF (eof flag set)
		}
		if j.Submit < s.lastOut {
			return nil, &SWFError{
				Source: s.opt.Source, Line: s.lineNo, Field: swfFieldNames[swfSubmit],
				Msg: fmt.Sprintf("submit time %d out of order by more than the %v reorder slack (already emitted up to %d)",
					int64(j.Submit), s.slack, int64(s.lastOut)),
			}
		}
		if s.haveAny && (j.Submit < s.prevSub || (j.Submit == s.prevSub && j.ID < s.prevID)) {
			s.inOrder = false
		}
		s.prevSub, s.prevID, s.haveAny = j.Submit, j.ID, true
		if j.Submit > s.maxSeen {
			s.maxSeen = j.Submit
		}
		s.buf.push(j)
	}
	if s.buf.Len() == 0 {
		return nil, io.EOF
	}
	j := s.buf.pop()
	if !s.haveBase {
		s.base, s.haveBase = j.Submit, true
	}
	s.lastOut = j.Submit
	j.Submit -= s.base
	return j, nil
}

// scanRecord parses lines until one yields a usable job, is skipped
// (returns nil, nil with skipped incremented), or the input ends
// (returns nil, nil with eof set).
func (s *SWFSource) scanRecord() (*job.Job, error) {
	for s.sc.Scan() {
		s.lineNo++
		j, skip, err := parseSWFLine(s.sc.Text(), s.lineNo, s.ppn, s.opt)
		if err != nil {
			return nil, err
		}
		if skip {
			s.skipped++
			return nil, nil
		}
		if j != nil {
			return j, nil
		}
		// Comment or blank line: keep scanning.
	}
	if err := s.sc.Err(); err != nil {
		src := s.opt.Source
		if src == "" {
			src = "SWF"
		}
		return nil, fmt.Errorf("workload: reading %s: %w", src, err)
	}
	s.eof = true
	return nil, nil
}

// swfBuf is a min-heap of jobs by (submit, ID).
type swfBuf []*job.Job

func (h swfBuf) Len() int { return len(h) }

func (h swfBuf) less(a, b *job.Job) bool {
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

func (h swfBuf) min() *job.Job { return h[0] }

func (h *swfBuf) push(j *job.Job) {
	*h = append(*h, j)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *swfBuf) pop() *job.Job {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less((*h)[l], (*h)[m]) {
			m = l
		}
		if r < n && h.less((*h)[r], (*h)[m]) {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top
}

// Stream returns a Source yielding exactly the jobs Generate would
// return, in the same order with the same IDs and attributes, without
// materializing the trace. Generate's only global step is sorting the
// arrival instants; arrival disorder is bounded (a burst spreads its
// extra submissions at most BurstSpread past the arrival that opened
// it, and the base arrival clock is monotone), so a pending min-heap
// drained up to the base clock reproduces the sorted order while
// holding only the arrivals still inside the reorder window. Job
// attributes are drawn per emitted index from the same split RNG
// streams Generate uses, so the two paths are bit-identical — a
// property the test suite pins.
func (c *Config) Stream() (Source, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cc := *c
	root := rng.New(cc.Seed)
	g := &genStream{
		c:          &cc,
		arrivalRng: root.Split("arrivals"),
		sizeRng:    root.Split("sizes"),
		runRng:     root.Split("runtimes"),
		wallRng:    root.Split("walltimes"),
		userRng:    root.Split("users"),
		burstRng:   root.Split("bursts"),
	}
	weights := make([]float64, len(cc.Sizes))
	for i, s := range cc.Sizes {
		weights[i] = s.Weight
	}
	g.sizeDist = rng.NewWeighted(weights)
	g.userDist = rng.NewZipf(cc.Users, cc.UserSkew)
	baseRate := 1 / float64(cc.Arrival.MeanInterarrival)
	g.maxRate = baseRate * (1 + cc.Arrival.DiurnalAmplitude)
	return g, nil
}

// genStream is the incremental synthetic generator behind
// Config.Stream.
type genStream struct {
	c          *Config
	arrivalRng *rng.Source
	sizeRng    *rng.Source
	runRng     *rng.Source
	wallRng    *rng.Source
	userRng    *rng.Source
	burstRng   *rng.Source
	sizeDist   *rng.Weighted
	userDist   *rng.Zipf
	maxRate    float64

	t         float64  // base arrival clock (monotone)
	generated int      // arrivals produced so far (Generate's cap counter)
	pending   timeHeap // arrivals not yet emitted
	genDone   bool
	emitted   int
}

func (g *genStream) capReached() bool {
	return g.c.MaxJobs > 0 && g.generated >= g.c.MaxJobs
}

// step replicates one iteration of Generate's arrival loop: one base
// interarrival draw, the thinning test, and the optional burst. The RNG
// consumption order matches Generate exactly.
func (g *genStream) step() {
	if g.capReached() {
		g.genDone = true
		return
	}
	g.t += g.arrivalRng.Exp(1 / g.maxRate)
	if units.Duration(g.t) > g.c.Horizon {
		g.genDone = true
		return
	}
	if g.arrivalRng.Float64() >= g.c.rateAt(units.Time(g.t))/g.maxRate {
		return // thinned
	}
	g.pending.push(units.Time(g.t))
	g.generated++
	if g.c.Arrival.BurstProb > 0 && g.burstRng.Bool(g.c.Arrival.BurstProb) {
		n := 1 + g.burstRng.Intn(2*g.c.Arrival.MeanBurstSize)
		for k := 0; k < n && !g.capReached(); k++ {
			off := units.Duration(g.burstRng.Float64() * float64(g.c.Arrival.BurstSpread))
			st := units.Time(g.t).Add(off)
			if units.Duration(st) <= g.c.Horizon {
				g.pending.push(st)
				g.generated++
			}
		}
	}
}

// Next implements Source.
func (g *genStream) Next() (*job.Job, error) {
	// The earliest pending arrival is final once the base clock passes
	// it: every future submit is at least the current base clock.
	for !g.genDone && (g.pending.Len() == 0 || g.pending.min() > units.Time(g.t)) {
		g.step()
	}
	if g.pending.Len() == 0 {
		return nil, io.EOF
	}
	submit := g.pending.pop()
	c := g.c
	nodes := c.Sizes[g.sizeDist.Draw(g.sizeRng)].Nodes
	if c.OddSizeProb > 0 && g.sizeRng.Bool(c.OddSizeProb) && nodes > 1 {
		nodes = 1 + int(float64(nodes-1)*g.sizeRng.Uniform(0.55, 1.0))
	}
	runtime := units.Duration(g.runRng.LogNormal(math.Log(c.Runtime.MedianSeconds), c.Runtime.Sigma)).
		Clamp(c.Runtime.Min, c.Runtime.Max)
	walltime := c.drawWalltime(g.wallRng, runtime)
	g.emitted++
	j := &job.Job{
		ID:       g.emitted,
		User:     fmt.Sprintf("u%d", g.userDist.Draw(g.userRng)+1),
		Submit:   submit,
		Nodes:    nodes,
		Walltime: walltime,
		Runtime:  runtime,
	}
	if err := j.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid job: %w", err)
	}
	return j, nil
}

// timeHeap is a min-heap of arrival instants.
type timeHeap []units.Time

func (h timeHeap) Len() int        { return len(h) }
func (h timeHeap) min() units.Time { return h[0] }

func (h *timeHeap) push(t units.Time) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[i] >= (*h)[p] {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *timeHeap) pop() units.Time {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && (*h)[l] < (*h)[m] {
			m = l
		}
		if r < n && (*h)[r] < (*h)[m] {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top
}
