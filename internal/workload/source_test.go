package workload

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"amjs/internal/units"
)

// The streaming generator must be bit-identical to the batch
// generator: same jobs, same order, same IDs.
func TestStreamMatchesGenerate(t *testing.T) {
	configs := map[string]Config{
		"mini":     Mini(3),
		"intrepid": func() Config { c := Intrepid(7); c.MaxJobs = 2000; return c }(),
		"heavy":    func() Config { c := IntrepidHeavy(11); c.MaxJobs = 500; return c }(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			want, err := cfg.Generate()
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			src, err := cfg.Stream()
			if err != nil {
				t.Fatalf("Stream: %v", err)
			}
			got, err := Collect(src)
			if err != nil {
				t.Fatalf("Collect: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("streamed %d jobs, batch generated %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("job %d differs:\nstream: %+v\nbatch:  %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// Streaming must not retain the whole trace: a second Next after EOF
// stays EOF, and the source is single-pass.
func TestStreamEOFSticky(t *testing.T) {
	cfg := Mini(1)
	src, err := cfg.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

func TestSWFSourceMatchesReadSWF(t *testing.T) {
	opt := SWFOptions{ProcsPerNode: 1}
	want, wantSkipped, err := ReadSWF(strings.NewReader(SampleSWF), opt)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSWFSource(strings.NewReader(SampleSWF), opt, DefaultSWFSlack)
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if src.Skipped() != wantSkipped {
		t.Errorf("Skipped() = %d, want %d", src.Skipped(), wantSkipped)
	}
	if !src.InOrder() {
		t.Errorf("InOrder() = false for the in-order sample trace")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming SWF parse differs from batch parse:\nstream: %v\nbatch:  %v", got, want)
	}
}

// makeSWFLine renders one 18-field record with the given id, submit,
// runtime, and processor count.
func makeSWFLine(id int, submit, run, procs int) string {
	return fmt.Sprintf("%d %d -1 %d %d -1 -1 %d %d -1 1 1 -1 -1 -1 -1 -1 -1\n",
		id, submit, run, procs, procs, run*2)
}

func TestSWFSourceReordersWithinSlack(t *testing.T) {
	// Records out of submit order, but never by more than 100 s.
	var b strings.Builder
	b.WriteString(makeSWFLine(1, 50, 600, 64))
	b.WriteString(makeSWFLine(2, 0, 600, 64)) // 50 s behind the max seen
	b.WriteString(makeSWFLine(3, 120, 600, 64))
	b.WriteString(makeSWFLine(4, 80, 600, 64)) // 40 s behind
	b.WriteString(makeSWFLine(5, 300, 600, 64))
	trace := b.String()
	opt := SWFOptions{ProcsPerNode: 1}

	want, _, err := ReadSWF(strings.NewReader(trace), opt)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSWFSource(strings.NewReader(trace), opt, 100*units.Second)
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if src.InOrder() {
		t.Errorf("InOrder() = true for an out-of-order trace")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reordered streaming parse differs from batch parse:\nstream: %v\nbatch:  %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Submit < got[i-1].Submit {
			t.Fatalf("emitted submits not nondecreasing at %d: %v after %v", i, got[i].Submit, got[i-1].Submit)
		}
	}
}

func TestSWFSourceDisorderBeyondSlack(t *testing.T) {
	var b strings.Builder
	b.WriteString(makeSWFLine(1, 100, 600, 64))
	b.WriteString(makeSWFLine(2, 300, 600, 64)) // pushes job 1 out of the buffer
	b.WriteString(makeSWFLine(3, 50, 600, 64))  // precedes an already-emitted record
	src := NewSWFSource(strings.NewReader(b.String()), SWFOptions{ProcsPerNode: 1}, 100*units.Second)
	_, err := Collect(src)
	if err == nil {
		t.Fatal("want error for disorder beyond the slack window, got nil")
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	jobs, _, err := ReadSWF(strings.NewReader(SampleSWF), SWFOptions{ProcsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(SliceSource(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jobs) {
		t.Fatal("SliceSource round trip altered the trace")
	}
}
