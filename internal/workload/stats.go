package workload

import (
	"fmt"
	"sort"
	"strings"

	"amjs/internal/job"
	"amjs/internal/stats"
	"amjs/internal/units"
)

// TraceStats summarizes a workload for inspection and load calibration.
type TraceStats struct {
	Jobs        int
	Users       int
	Span        units.Duration // first submit to last completion bound (submit+runtime)
	NodeSeconds int64          // total requested node-seconds
	OfferedLoad float64        // NodeSeconds / (machineNodes * Span)
	Runtime     stats.Summary  // seconds
	Walltime    stats.Summary  // seconds
	OverEst     stats.Summary  // walltime/runtime ratio
	Nodes       stats.Summary
	SizeCounts  map[int]int // exact request histogram
}

// Analyze computes TraceStats against a machine of the given size.
func Analyze(jobs []*job.Job, machineNodes int) TraceStats {
	ts := TraceStats{Jobs: len(jobs), SizeCounts: make(map[int]int)}
	if len(jobs) == 0 {
		return ts
	}
	users := make(map[string]bool)
	var runtimes, walls, over, nodes []float64
	var lastEnd units.Time
	firstSubmit := jobs[0].Submit
	for _, j := range jobs {
		users[j.User] = true
		runtimes = append(runtimes, float64(j.Runtime))
		walls = append(walls, float64(j.Walltime))
		over = append(over, float64(j.Walltime)/float64(j.Runtime))
		nodes = append(nodes, float64(j.Nodes))
		ts.NodeSeconds += j.NodeSeconds()
		ts.SizeCounts[j.Nodes]++
		if j.Submit < firstSubmit {
			firstSubmit = j.Submit
		}
		if end := j.Submit.Add(j.Runtime); end > lastEnd {
			lastEnd = end
		}
	}
	ts.Users = len(users)
	ts.Span = lastEnd.Sub(firstSubmit)
	ts.Runtime = stats.Summarize(runtimes)
	ts.Walltime = stats.Summarize(walls)
	ts.OverEst = stats.Summarize(over)
	ts.Nodes = stats.Summarize(nodes)
	if machineNodes > 0 && ts.Span > 0 {
		ts.OfferedLoad = float64(ts.NodeSeconds) / (float64(machineNodes) * float64(ts.Span))
	}
	return ts
}

// String renders a multi-line human-readable report.
func (ts TraceStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs:         %d\n", ts.Jobs)
	fmt.Fprintf(&b, "users:        %d\n", ts.Users)
	fmt.Fprintf(&b, "span:         %.1f h\n", ts.Span.HoursF())
	fmt.Fprintf(&b, "offered load: %.1f%%\n", ts.OfferedLoad*100)
	fmt.Fprintf(&b, "runtime:      mean %.0fs  p50 %.0fs  p99 %.0fs\n", ts.Runtime.Mean, ts.Runtime.P50, ts.Runtime.P99)
	fmt.Fprintf(&b, "walltime:     mean %.0fs  p50 %.0fs\n", ts.Walltime.Mean, ts.Walltime.P50)
	fmt.Fprintf(&b, "overestimate: mean %.1fx  p50 %.1fx\n", ts.OverEst.Mean, ts.OverEst.P50)
	fmt.Fprintf(&b, "nodes:        mean %.0f  p50 %.0f  max %.0f\n", ts.Nodes.Mean, ts.Nodes.P50, ts.Nodes.Max)
	sizes := make([]int, 0, len(ts.SizeCounts))
	for s := range ts.SizeCounts {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	fmt.Fprintf(&b, "sizes:        ")
	for i, s := range sizes {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%d×%d", s, ts.SizeCounts[s])
		if i >= 11 && len(sizes) > 13 {
			fmt.Fprintf(&b, "  … (%d more)", len(sizes)-i-1)
			break
		}
	}
	b.WriteString("\n")
	return b.String()
}
