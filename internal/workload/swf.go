// Package workload produces and consumes job traces.
//
// Two sources are supported:
//
//   - The Standard Workload Format (SWF) used by the Parallel Workloads
//     Archive, so real traces can be replayed directly.
//
//   - A synthetic generator calibrated to the characteristics of the
//     Intrepid Blue Gene/P workload the paper evaluates on (bursty
//     arrivals with diurnal and weekly cycles, partition-quantized job
//     sizes biased to powers of two, heavy-tailed runtimes, and
//     mixture-model walltime overestimates). The generator stands in
//     for the proprietary Argonne trace; see DESIGN.md §3.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"amjs/internal/job"
	"amjs/internal/units"
)

// SWF field indices (0-based) of the 18-field Standard Workload Format.
const (
	swfJobID = iota
	swfSubmit
	swfWait
	swfRunTime
	swfAllocProcs
	swfAvgCPU
	swfUsedMem
	swfReqProcs
	swfReqTime
	swfReqMem
	swfStatus
	swfUserID
	swfGroupID
	swfExecutable
	swfQueue
	swfPartition
	swfPrecedingJob
	swfThinkTime
	swfFieldCount
)

// SWFOptions control how an SWF trace is interpreted.
type SWFOptions struct {
	// ProcsPerNode divides the processor counts in the trace to obtain
	// node counts (Intrepid reports 4 cores per node). 0 means 1.
	ProcsPerNode int

	// MaxNodes drops jobs requesting more nodes than the target machine
	// provides. 0 means no limit.
	MaxNodes int

	// KeepFailed keeps jobs whose SWF status is not 1 (completed).
	// Runtimes of failed/cancelled jobs are still honored when positive.
	KeepFailed bool

	// Source labels the trace in error messages (conventionally the
	// file path). Empty renders as "swf".
	Source string
}

// SWFError pinpoints a malformed SWF record: the trace it came from,
// the 1-based line number, the offending field (empty for line-level
// problems such as a short record), and what was wrong with it. It is
// returned, wrapped or not, by ReadSWF and SWFSource; errors.As
// recovers it for programmatic handling.
type SWFError struct {
	Source string // trace label (file path); "" when unknown
	Line   int    // 1-based line number
	Field  string // SWF field name, "" for line-level errors
	Msg    string // what was malformed
}

// Error implements error.
func (e *SWFError) Error() string {
	src := e.Source
	if src == "" {
		src = "swf"
	}
	if e.Field == "" {
		return fmt.Sprintf("workload: %s:%d: %s", src, e.Line, e.Msg)
	}
	return fmt.Sprintf("workload: %s:%d: field %q: %s", src, e.Line, e.Field, e.Msg)
}

// swfFieldNames maps field indices to the Standard Workload Format's
// field names, for error messages.
var swfFieldNames = [swfFieldCount]string{
	swfJobID:        "job number",
	swfSubmit:       "submit time",
	swfWait:         "wait time",
	swfRunTime:      "run time",
	swfAllocProcs:   "allocated processors",
	swfAvgCPU:       "average cpu time",
	swfUsedMem:      "used memory",
	swfReqProcs:     "requested processors",
	swfReqTime:      "requested time",
	swfReqMem:       "requested memory",
	swfStatus:       "status",
	swfUserID:       "user id",
	swfGroupID:      "group id",
	swfExecutable:   "executable",
	swfQueue:        "queue",
	swfPartition:    "partition",
	swfPrecedingJob: "preceding job",
	swfThinkTime:    "think time",
}

// ReadSWF parses an SWF trace. Jobs with unusable fields (non-positive
// runtime or size) are skipped; the number skipped is returned. Submit
// times are rebased so the earliest kept job submits at time 0. For the
// streaming counterpart, see NewSWFSource.
func ReadSWF(r io.Reader, opt SWFOptions) (jobs []*job.Job, skipped int, err error) {
	ppn := opt.ProcsPerNode
	if ppn <= 0 {
		ppn = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	inOrder := true // detected during the parse: archive traces usually are
	for sc.Scan() {
		lineNo++
		j, skip, err := parseSWFLine(sc.Text(), lineNo, ppn, opt)
		if err != nil {
			return nil, skipped, err
		}
		if skip {
			skipped++
			continue
		}
		if j == nil {
			continue // comment or blank line
		}
		if n := len(jobs); n > 0 && inOrder {
			prev := jobs[n-1]
			if j.Submit < prev.Submit || (j.Submit == prev.Submit && j.ID < prev.ID) {
				inOrder = false
			}
		}
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("workload: reading SWF: %w", err)
	}
	rebase(jobs, inOrder)
	return jobs, skipped, nil
}

// parseSWFLine parses one SWF line. It returns (nil, false, nil) for
// comments and blank lines, (nil, true, nil) for records that are
// syntactically valid but unusable under the options, and an error for
// malformed records.
func parseSWFLine(raw string, lineNo, ppn int, opt SWFOptions) (j *job.Job, skip bool, err error) {
	line := strings.TrimSpace(raw)
	if line == "" || strings.HasPrefix(line, ";") {
		return nil, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < swfFieldCount {
		return nil, false, &SWFError{
			Source: opt.Source, Line: lineNo,
			Msg: fmt.Sprintf("%d fields, want %d", len(fields), swfFieldCount),
		}
	}
	var ferr *SWFError
	get := func(i int) int64 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil && ferr == nil {
			ferr = &SWFError{
				Source: opt.Source, Line: lineNo, Field: swfFieldNames[i],
				Msg: fmt.Sprintf("not an integer: %q", fields[i]),
			}
		}
		return v
	}
	id := get(swfJobID)
	submit := get(swfSubmit)
	runSec := get(swfRunTime)
	reqProcs := get(swfReqProcs)
	allocProcs := get(swfAllocProcs)
	reqTime := get(swfReqTime)
	status := get(swfStatus)
	userID := get(swfUserID)
	if ferr != nil {
		return nil, false, ferr
	}
	// -1 is the format's "unknown" sentinel; anything more negative is
	// not a valid SWF value and signals a corrupt record rather than a
	// merely unusable one.
	for _, f := range []struct {
		idx int
		v   int64
	}{{swfRunTime, runSec}, {swfReqProcs, reqProcs}, {swfAllocProcs, allocProcs}, {swfReqTime, reqTime}} {
		if f.v < -1 {
			return nil, false, &SWFError{
				Source: opt.Source, Line: lineNo, Field: swfFieldNames[f.idx],
				Msg: fmt.Sprintf("negative value %d (only -1 may mark unknown)", f.v),
			}
		}
	}

	procs := reqProcs
	if procs <= 0 {
		procs = allocProcs
	}
	if !opt.KeepFailed && status != 1 && status != 0 {
		return nil, true, nil
	}
	if runSec <= 0 || procs <= 0 || submit < 0 {
		return nil, true, nil
	}
	// Job ids must be positive (0 is the engine's "no job" sentinel), and
	// a processor count beyond any real machine would overflow the node
	// arithmetic below. Both mark unusable records, not corrupt ones.
	if id <= 0 || procs > 1<<31 {
		return nil, true, nil
	}
	nodes := int((procs + int64(ppn) - 1) / int64(ppn))
	if opt.MaxNodes > 0 && nodes > opt.MaxNodes {
		return nil, true, nil
	}
	wall := units.Duration(reqTime)
	if wall < units.Duration(runSec) {
		wall = units.Duration(runSec) // distrust bad estimates, never truncate runtimes
	}
	return &job.Job{
		ID:       int(id),
		User:     "u" + strconv.FormatInt(userID, 10),
		Submit:   units.Time(submit),
		Nodes:    nodes,
		Walltime: wall,
		Runtime:  units.Duration(runSec),
	}, false, nil
}

// WriteSWF renders jobs as an SWF trace. Unknown fields are written as
// -1 per the format convention.
func WriteSWF(w io.Writer, jobs []*job.Job, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
			if _, err := fmt.Fprintf(bw, "; %s\n", line); err != nil {
				return err
			}
		}
	}
	for _, j := range jobs {
		wait := int64(-1)
		status := int64(1)
		if j.State == job.Running || j.State == job.Finished || j.State == job.Killed {
			wait = int64(j.Wait())
		}
		user := strings.TrimPrefix(j.User, "u")
		if _, err := strconv.Atoi(user); err != nil {
			user = "-1"
		}
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d -1 -1 %d %d -1 %d %s -1 -1 -1 -1 -1 -1\n",
			j.ID, int64(j.Submit), wait, int64(j.Runtime), j.Nodes, j.Nodes,
			int64(j.Walltime), status, user)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Rebase shifts submit times so the earliest job submits at 0 and sorts
// jobs by (submit, ID). A trace that is already in order — the Parallel
// Workloads Archive common case — pays one linear scan and skips the
// O(n log n) sort.
func Rebase(jobs []*job.Job) {
	inOrder := true
	for i := 1; i < len(jobs); i++ {
		a, b := jobs[i-1], jobs[i]
		if b.Submit < a.Submit || (b.Submit == a.Submit && b.ID < a.ID) {
			inOrder = false
			break
		}
	}
	rebase(jobs, inOrder)
}

// rebase is Rebase with the order check hoisted to the caller (ReadSWF
// detects order during the parse instead of rescanning).
func rebase(jobs []*job.Job, inOrder bool) {
	if len(jobs) == 0 {
		return
	}
	min := jobs[0].Submit
	for _, j := range jobs {
		if j.Submit < min {
			min = j.Submit
		}
	}
	for _, j := range jobs {
		j.Submit -= min
	}
	if inOrder {
		return
	}
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
}

// SampleSWF is a small hand-written SWF fragment used by tests and the
// trace-replay example. It describes ten jobs on a 512-node machine.
const SampleSWF = `; SWF sample trace (synthetic, 512-node machine)
; MaxNodes: 512
; Note: fields are the 18 standard SWF columns
1   0     -1 1800  64  -1 -1  64  3600  -1 1 1 -1 -1 -1 -1 -1 -1
2   60    -1 3600  128 -1 -1 128 7200  -1 1 2 -1 -1 -1 -1 -1 -1
3   120   -1 600   512 -1 -1 512 1800  -1 1 1 -1 -1 -1 -1 -1 -1
4   600   -1 7200  64  -1 -1 64  7200  -1 1 3 -1 -1 -1 -1 -1 -1
5   900   -1 1200  256 -1 -1 256 3600  -1 1 2 -1 -1 -1 -1 -1 -1
6   1800  -1 2400  64  -1 -1 64  3600  -1 1 4 -1 -1 -1 -1 -1 -1
7   2400  -1 900   128 -1 -1 128 1800  -1 1 1 -1 -1 -1 -1 -1 -1
8   3000  -1 5400  512 -1 -1 512 10800 -1 1 5 -1 -1 -1 -1 -1 -1
9   3600  -1 300   64  -1 -1 64  900   -1 1 2 -1 -1 -1 -1 -1 -1
10  4200  -1 1800  256 -1 -1 256 3600  -1 1 3 -1 -1 -1 -1 -1 -1
`
