package workload

import (
	"errors"
	"io"
	"strings"
	"testing"

	"amjs/internal/units"
)

// swfLine renders one syntactically valid 18-field record.
const swfGoodLine = "1 0 -1 1800 64 -1 -1 64 3600 -1 1 1 -1 -1 -1 -1 -1 -1\n"

// Malformed records must surface as SWFError with the trace label, the
// 1-based line number, and the offending field by its SWF name.
func TestReadSWFErrors(t *testing.T) {
	cases := map[string]struct {
		trace     string
		wantLine  int
		wantField string // "" for line-level errors
		wantMsg   string // substring of the message
	}{
		"short record": {
			trace:     "; header\n" + swfGoodLine + "2 60 -1 3600 128\n",
			wantLine:  3,
			wantField: "",
			wantMsg:   "5 fields, want 18",
		},
		"non-integer job id": {
			trace:     "abc 0 -1 1800 64 -1 -1 64 3600 -1 1 1 -1 -1 -1 -1 -1 -1\n",
			wantLine:  1,
			wantField: "job number",
			wantMsg:   `not an integer: "abc"`,
		},
		"non-integer processors": {
			trace:     swfGoodLine + "2 60 -1 3600 128 -1 -1 many 7200 -1 1 2 -1 -1 -1 -1 -1 -1\n",
			wantLine:  2,
			wantField: "requested processors",
			wantMsg:   `not an integer: "many"`,
		},
		"negative runtime": {
			trace:     swfGoodLine + "2 60 -1 -7 128 -1 -1 128 7200 -1 1 2 -1 -1 -1 -1 -1 -1\n",
			wantLine:  2,
			wantField: "run time",
			wantMsg:   "negative value -7 (only -1 may mark unknown)",
		},
		"negative requested time": {
			trace:     "1 0 -1 1800 64 -1 -1 64 -3600 -1 1 1 -1 -1 -1 -1 -1 -1\n",
			wantLine:  1,
			wantField: "requested time",
			wantMsg:   "negative value -3600",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, _, err := ReadSWF(strings.NewReader(tc.trace), SWFOptions{Source: "trace.swf"})
			var se *SWFError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want *SWFError", err)
			}
			if se.Source != "trace.swf" {
				t.Errorf("Source = %q, want %q", se.Source, "trace.swf")
			}
			if se.Line != tc.wantLine {
				t.Errorf("Line = %d, want %d", se.Line, tc.wantLine)
			}
			if se.Field != tc.wantField {
				t.Errorf("Field = %q, want %q", se.Field, tc.wantField)
			}
			if !strings.Contains(se.Msg, tc.wantMsg) {
				t.Errorf("Msg = %q, want it to contain %q", se.Msg, tc.wantMsg)
			}
			if !strings.Contains(err.Error(), "trace.swf:") {
				t.Errorf("rendered error %q does not carry the source label", err)
			}
		})
	}
}

// The -1 "unknown" sentinel must stay a skip, not an error: only values
// below -1 mark a corrupt record.
func TestReadSWFUnknownSentinelSkips(t *testing.T) {
	trace := swfGoodLine +
		"2 60 -1 -1 128 -1 -1 128 7200 -1 1 2 -1 -1 -1 -1 -1 -1\n" // unknown runtime
	jobs, skipped, err := ReadSWF(strings.NewReader(trace), SWFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || skipped != 1 {
		t.Fatalf("jobs/skipped = %d/%d, want 1/1", len(jobs), skipped)
	}
}

// The empty Source renders as "swf" so errors are still labelled.
func TestSWFErrorDefaultSource(t *testing.T) {
	_, _, err := ReadSWF(strings.NewReader("1 2 3\n"), SWFOptions{})
	if err == nil || !strings.HasPrefix(err.Error(), "workload: swf:1:") {
		t.Fatalf("err = %v, want workload: swf:1: prefix", err)
	}
}

// A record arriving more out of order than the reorder slack is an
// error from the streaming source, attributed to the submit-time field
// of the offending line.
func TestSWFSourceDisorderErrorDetails(t *testing.T) {
	trace := "; header\n" +
		"1 10000 -1 1800 64 -1 -1 64 3600 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
		"2 20000 -1 1800 64 -1 -1 64 3600 -1 1 1 -1 -1 -1 -1 -1 -1\n" +
		// 600s slack: job 1 (submit 10000) is released once job 2 reads
		// ahead past the slack; this record then precedes the emitted
		// horizon by far more than the slack can absorb.
		"3 9000 -1 1800 64 -1 -1 64 3600 -1 1 1 -1 -1 -1 -1 -1 -1\n"
	src := NewSWFSource(strings.NewReader(trace), SWFOptions{Source: "stream.swf"}, 600*units.Second)
	var firstErr error
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			firstErr = err
			break
		}
	}
	var se *SWFError
	if !errors.As(firstErr, &se) {
		t.Fatalf("err = %v, want *SWFError", firstErr)
	}
	if se.Source != "stream.swf" || se.Line != 4 || se.Field != "submit time" {
		t.Errorf("SWFError = %+v, want stream.swf:4 field submit time", se)
	}
	if !strings.Contains(se.Msg, "out of order by more than the") {
		t.Errorf("Msg = %q, want reorder-slack explanation", se.Msg)
	}
}
