package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"amjs/internal/job"
	"amjs/internal/units"
)

func TestReadSampleSWF(t *testing.T) {
	jobs, skipped, err := ReadSWF(strings.NewReader(SampleSWF), SWFOptions{})
	if err != nil {
		t.Fatalf("ReadSWF: %v", err)
	}
	if skipped != 0 || len(jobs) != 10 {
		t.Fatalf("got %d jobs, %d skipped", len(jobs), skipped)
	}
	j := jobs[0]
	if j.ID != 1 || j.Submit != 0 || j.Nodes != 64 || j.Runtime != 1800 || j.Walltime != 3600 || j.User != "u1" {
		t.Errorf("first job wrong: %+v", j)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("invalid job from SWF: %v", err)
		}
	}
}

func TestReadSWFOptions(t *testing.T) {
	// ProcsPerNode conversion: 64 procs / 4 = 16 nodes.
	jobs, _, err := ReadSWF(strings.NewReader(SampleSWF), SWFOptions{ProcsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Nodes != 16 {
		t.Errorf("ppn conversion: nodes = %d, want 16", jobs[0].Nodes)
	}
	// MaxNodes filtering: drop jobs over 128 nodes.
	jobs, skipped, err := ReadSWF(strings.NewReader(SampleSWF), SWFOptions{MaxNodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 4 || len(jobs) != 6 {
		t.Errorf("MaxNodes filter: %d jobs, %d skipped", len(jobs), skipped)
	}
}

func TestReadSWFBadInput(t *testing.T) {
	if _, _, err := ReadSWF(strings.NewReader("1 2 3\n"), SWFOptions{}); err == nil {
		t.Error("short line accepted")
	}
	if _, _, err := ReadSWF(strings.NewReader("x 0 -1 10 4 -1 -1 4 20 -1 1 1 -1 -1 -1 -1 -1 -1\n"), SWFOptions{}); err == nil {
		t.Error("bad job id accepted")
	}
	// Unusable jobs are skipped, not fatal.
	jobs, skipped, err := ReadSWF(strings.NewReader(
		"1 0 -1 -1 4 -1 -1 4 20 -1 1 1 -1 -1 -1 -1 -1 -1\n"+
			"2 5 -1 10 4 -1 -1 4 20 -1 1 1 -1 -1 -1 -1 -1 -1\n"), SWFOptions{})
	if err != nil || skipped != 1 || len(jobs) != 1 {
		t.Errorf("skip handling wrong: %d jobs %d skipped err=%v", len(jobs), skipped, err)
	}
}

func TestSWFStatusFilter(t *testing.T) {
	trace := "1 0 -1 10 4 -1 -1 4 20 -1 5 1 -1 -1 -1 -1 -1 -1\n" // status 5 = cancelled
	jobs, skipped, err := ReadSWF(strings.NewReader(trace), SWFOptions{})
	if err != nil || len(jobs) != 0 || skipped != 1 {
		t.Errorf("cancelled job kept: %d jobs", len(jobs))
	}
	jobs, _, err = ReadSWF(strings.NewReader(trace), SWFOptions{KeepFailed: true})
	if err != nil || len(jobs) != 1 {
		t.Errorf("KeepFailed dropped job")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig, _, err := ReadSWF(strings.NewReader(SampleSWF), SWFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig, "round trip\nsecond header line"); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ReadSWF(&buf, SWFOptions{})
	if err != nil || skipped != 0 {
		t.Fatalf("re-read: %v, %d skipped", err, skipped)
	}
	if len(back) != len(orig) {
		t.Fatalf("job count changed: %d != %d", len(back), len(orig))
	}
	for i := range orig {
		a, b := orig[i], back[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Nodes != b.Nodes ||
			a.Runtime != b.Runtime || a.Walltime != b.Walltime || a.User != b.User {
			t.Errorf("job %d changed: %+v vs %+v", a.ID, a, b)
		}
	}
}

func TestRebase(t *testing.T) {
	jobs := []*job.Job{
		{ID: 2, Submit: 500},
		{ID: 1, Submit: 100},
		{ID: 3, Submit: 100},
	}
	Rebase(jobs)
	if jobs[0].ID != 1 || jobs[0].Submit != 0 {
		t.Errorf("rebase order wrong: %+v", jobs[0])
	}
	if jobs[1].ID != 3 || jobs[2].Submit != 400 {
		t.Errorf("rebase wrong: %+v %+v", jobs[1], jobs[2])
	}
	Rebase(nil) // must not panic
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Mini(7)
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfgB := Mini(7)
	b, err := cfgB.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	cfgC := Mini(8)
	c, err := cfgC.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range a {
			if *a[i] != *c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestGenerateValidSortedJobs(t *testing.T) {
	cfg := Mini(3)
	jobs, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 50 {
		t.Fatalf("suspiciously few jobs: %d", len(jobs))
	}
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("job %d invalid: %v", i, err)
		}
		if j.ID != i+1 {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
		if i > 0 && j.Submit < jobs[i-1].Submit {
			t.Errorf("jobs not sorted at %d", i)
		}
		if j.Nodes > 512 {
			t.Errorf("job exceeds machine: %d nodes", j.Nodes)
		}
	}
}

func TestGenerateMaxJobsCap(t *testing.T) {
	cfg := Mini(3)
	cfg.MaxJobs = 20
	jobs, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) > 20 {
		t.Errorf("cap exceeded: %d jobs", len(jobs))
	}
}

func TestIntrepidPresetLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("full-month generation")
	}
	cfg := Intrepid(42)
	jobs, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ts := Analyze(jobs, cfg.MachineNodes)
	if ts.Jobs < 1500 || ts.Jobs > 15000 {
		t.Errorf("job count off: %d", ts.Jobs)
	}
	if ts.OfferedLoad < 0.5 || ts.OfferedLoad > 1.1 {
		t.Errorf("offered load off: %.2f (want queueing but not runaway)", ts.OfferedLoad)
	}
	if ts.OverEst.P50 < 1 {
		t.Errorf("median overestimate below 1: %v", ts.OverEst.P50)
	}
	// Heavy preset must offer more load.
	heavyCfg := IntrepidHeavy(42)
	heavy, err := heavyCfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	hs := Analyze(heavy, cfg.MachineNodes)
	if hs.OfferedLoad <= ts.OfferedLoad {
		t.Errorf("heavy load %.2f not above base %.2f", hs.OfferedLoad, ts.OfferedLoad)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.MachineNodes = 0 },
		func(c *Config) { c.Sizes = nil },
		func(c *Config) { c.Sizes = []SizeWeight{{Nodes: 9999, Weight: 1}} },
		func(c *Config) { c.Sizes = []SizeWeight{{Nodes: 64, Weight: -1}} },
		func(c *Config) { c.Arrival.MeanInterarrival = 0 },
		func(c *Config) { c.Arrival.DiurnalAmplitude = 2 },
		func(c *Config) { c.Arrival.WeekendFactor = 0 },
		func(c *Config) { c.Runtime.MedianSeconds = 0 },
		func(c *Config) { c.Runtime.Min = 0 },
		func(c *Config) { c.Runtime.Max = 1; c.Runtime.Min = 2 },
		func(c *Config) { c.Walltime.Max = c.Runtime.Max - 1 },
		func(c *Config) { c.Users = 0 },
	}
	for i, mutate := range bad {
		c := Mini(1)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	c := Mini(1)
	if err := c.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestWalltimeNeverBelowRuntime(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Mini(seed)
		cfg.MaxJobs = 60
		jobs, err := cfg.Generate()
		if err != nil {
			return false
		}
		for _, j := range jobs {
			if j.Walltime < j.Runtime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAnalyze(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: "a", Submit: 0, Nodes: 100, Runtime: 100, Walltime: 200},
		{ID: 2, User: "b", Submit: 50, Nodes: 50, Runtime: 150, Walltime: 150},
	}
	ts := Analyze(jobs, 200)
	if ts.Jobs != 2 || ts.Users != 2 {
		t.Errorf("counts wrong: %+v", ts)
	}
	if ts.NodeSeconds != 100*100+50*150 {
		t.Errorf("node-seconds = %d", ts.NodeSeconds)
	}
	if ts.Span != 200 { // last end = 50+150 = 200
		t.Errorf("span = %v", ts.Span)
	}
	wantLoad := float64(17500) / (200.0 * 200.0)
	if diff := ts.OfferedLoad - wantLoad; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("load = %v, want %v", ts.OfferedLoad, wantLoad)
	}
	if s := ts.String(); !strings.Contains(s, "jobs:") || !strings.Contains(s, "offered load") {
		t.Errorf("report missing fields: %q", s)
	}
	empty := Analyze(nil, 100)
	if empty.Jobs != 0 || empty.OfferedLoad != 0 {
		t.Error("empty analyze wrong")
	}
	_ = units.Time(0)
}
