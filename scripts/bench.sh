#!/bin/sh
# Runs the scheduling benchmarks and writes a machine-readable summary
# to BENCH_<n>.json (default BENCH_7.json) so perf changes are tracked
# in-repo. The default set covers the window-search micro-benchmarks,
# the end-to-end simulation benchmark (BenchmarkSimEndToEnd), the
# full-Intrepid 50k-job scale benchmark (BenchmarkSimAtScale), which
# sweeps the work-stealing search across worker counts, and the what-if
# tuning family (BenchmarkSimWhatIf), which prices the
# simulation-in-the-loop planner against the threshold-rule tuner.
#
# The emitted file carries four audit sections:
#
#   - "env": GOMAXPROCS (pinned for the run, see below), the worker-pool
#     width the parallel search would use (one per CPU), and the CPU
#     model, so cross-machine comparisons are honest (cmd/benchcompare
#     warns on mismatch);
#   - "baseline": the numbers measured by the previous PR's artifact
#     (BENCH_6: incremental event-mode fairness oracle, per-worker
#     search arenas), so the cost of the new what-if subsystem is
#     auditable from the artifact alone;
#   - "fair_ratios": the fairness-oracle overhead family — for each
#     engine mode, fair=on versus fair=off ns/op and their ratio,
#     computed from this run's own SimEndToEnd rows;
#   - "whatif": the lookahead-tuning cost family — per what-if variant
#     the mean wall cost of one lookahead tick, the share of its own
#     run spent in lookahead, and that run's total lookahead spend as a
#     percentage of the at-scale end-to-end runtime (the acceptance bar
#     is atscale_tick_pct <= 10 at the default horizon).
#
# Usage: scripts/bench.sh [output.json] [bench regex]
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_7.json}
pattern=${2:-'ScheduleIteration|PlanEarliestStart|PlanCommit|SimEndToEnd|SimAtScale|SimWhatIf'}
raw=$(mktemp)
body=$(mktemp)
ratios=$(mktemp)
whatif=$(mktemp)
trap 'rm -f "$raw" "$body" "$ratios" "$whatif"' EXIT

# Pin GOMAXPROCS for the whole run so the recorded value is the value
# the benchmarks actually ran under (an inherited mid-run change or an
# unset variable would otherwise make the artifact lie about the
# parallelism the numbers were measured at). Defaults to every CPU.
GOMAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
export GOMAXPROCS
gomaxprocs=$GOMAXPROCS
workers=$(nproc 2>/dev/null || echo 1)

echo "bench.sh: running go test -bench '$pattern' (GOMAXPROCS=$GOMAXPROCS) ..." >&2
# Three repetitions per benchmark; the awk pass below keeps the best
# (minimum ns/op) draw per name. On a shared 1-CPU box background load
# only ever adds time, so min-of-N is the low-noise estimator.
go test -run '^$' -bench "$pattern" -benchmem -count 3 . | tee "$raw" >&2

goversion=$(go env GOVERSION)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
cpumodel=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
[ -n "$cpumodel" ] || cpumodel=unknown

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; jobs = ""
    tick = ""; over = ""; commits = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns = $i
        if ($(i+1) == "B/op")       bytes = $i
        if ($(i+1) == "allocs/op")  allocs = $i
        if ($(i+1) == "jobs/s")     jobs = $i
        if ($(i+1) == "tick-ms")    tick = $i
        if ($(i+1) == "overhead-%") over = $i
        if ($(i+1) == "commits")    commits = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (jobs != "")    line = line sprintf(", \"jobs_per_sec\": %s", jobs)
    if (tick != "")    line = line sprintf(", \"tick_ms\": %s", tick)
    if (over != "")    line = line sprintf(", \"overhead_pct\": %s", over)
    if (commits != "") line = line sprintf(", \"commits\": %d", commits)
    if (bytes != "")   line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "")  line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    # -count N repeats each benchmark; keep the best (min ns/op) draw.
    if (!(name in best) || ns + 0 < bestNs[name]) {
        if (!(name in best)) order[++n] = name
        best[name] = line
        bestNs[name] = ns + 0
    }
}
END {
    for (i = 1; i <= n; i++)
        printf "%s%s\n", best[order[i]], (i < n ? "," : "")
}
' "$raw" >"$body"

# Derive the fair-oracle overhead family from the SimEndToEnd rows just
# kept: per mode, fair=on vs fair=off ns/op and the ratio between them.
awk -F'"' '
/SimEndToEnd/ {
    name = $4
    split($0, f, "\"ns_per_op\": ")
    ns = f[2] + 0
    mode = name
    sub(/^BenchmarkSimEndToEnd\//, "", mode)
    sub(/\/fair=(on|off)$/, "", mode)
    if (name ~ /fair=on$/)  on[mode] = ns
    if (name ~ /fair=off$/) off[mode] = ns
    if (!(mode in seen)) { order[++n] = mode; seen[mode] = 1 }
}
END {
    first = 1
    for (i = 1; i <= n; i++) {
        m = order[i]
        if (!(m in on) || !(m in off) || off[m] == 0) continue
        if (!first) printf ",\n"
        first = 0
        printf "    {\"mode\": \"%s\", \"fair_off_ns\": %d, \"fair_on_ns\": %d, \"ratio\": %.2f}", \
            m, off[m], on[m], on[m] / off[m]
    }
    if (!first) printf "\n"
}
' "$body" >"$ratios"

# Derive the what-if cost family: per what-if variant, the mean
# lookahead-tick cost and the run's total lookahead spend
# (ns_per_op * overhead_pct) as a share of the at-scale serial
# end-to-end runtime — the acceptance ratio the artifact must record.
awk -F'"' '
/SimAtScale\/search=serial/ {
    split($0, f, "\"ns_per_op\": ")
    atscale = f[2] + 0
}
/SimWhatIf.*whatif/ {
    name = $4
    sub(/^BenchmarkSimWhatIf\//, "", name)
    split($0, f, "\"ns_per_op\": ");      ns = f[2] + 0
    split($0, f, "\"tick_ms\": ");        tick = f[2] + 0
    split($0, f, "\"overhead_pct\": ");   over = f[2] + 0
    split($0, f, "\"commits\": ");        commits = f[2] + 0
    order[++n] = name
    nsv[name] = ns; tickv[name] = tick; overv[name] = over; commitv[name] = commits
}
END {
    first = 1
    for (i = 1; i <= n; i++) {
        m = order[i]
        lookahead_ns = nsv[m] * overv[m] / 100
        pct = (atscale > 0) ? lookahead_ns / atscale * 100 : 0
        if (!first) printf ",\n"
        first = 0
        printf "    {\"variant\": \"%s\", \"tick_ms\": %.4f, \"overhead_pct\": %.2f, \"commits\": %d, \"atscale_tick_pct\": %.3f}", \
            m, tickv[m], overv[m], commitv[m], pct
    }
    if (!first) printf "\n"
}
' "$body" >"$whatif"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$stamp"
	printf '  "go": "%s",\n' "$goversion"
	printf '  "env": {\n'
	printf '    "gomaxprocs": %s,\n' "$gomaxprocs"
	printf '    "search_workers": %s,\n' "$workers"
	printf '    "cpu": "%s"\n' "$cpumodel"
	printf '  },\n'
	cat <<'EOF'
  "baseline": {
    "note": "BENCH_6: previous PR (incremental event-mode fairness oracle, per-worker search arenas), same machine class, gomaxprocs=1",
    "benchmarks": [
      {"name": "BenchmarkScheduleIteration/W=1", "ns_per_op": 10134, "bytes_per_op": 8504, "allocs_per_op": 82},
      {"name": "BenchmarkScheduleIteration/W=2", "ns_per_op": 8907, "bytes_per_op": 8512, "allocs_per_op": 82},
      {"name": "BenchmarkScheduleIteration/W=3", "ns_per_op": 10618, "bytes_per_op": 9088, "allocs_per_op": 94},
      {"name": "BenchmarkScheduleIteration/W=4", "ns_per_op": 13328, "bytes_per_op": 9504, "allocs_per_op": 100},
      {"name": "BenchmarkScheduleIteration/W=5", "ns_per_op": 22113, "bytes_per_op": 10216, "allocs_per_op": 106},
      {"name": "BenchmarkSimEndToEnd/event/fair=off", "ns_per_op": 1813071, "jobs_per_sec": 140646, "bytes_per_op": 147009, "allocs_per_op": 313},
      {"name": "BenchmarkSimEndToEnd/event/fair=on", "ns_per_op": 7409000, "jobs_per_sec": 34418, "bytes_per_op": 381679, "allocs_per_op": 2418},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=off", "ns_per_op": 4802842, "jobs_per_sec": 53094, "bytes_per_op": 171624, "allocs_per_op": 319},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=on", "ns_per_op": 11560906, "jobs_per_sec": 22057, "bytes_per_op": 411440, "allocs_per_op": 2487},
      {"name": "BenchmarkSimAtScale/search=serial", "ns_per_op": 1018660630, "jobs_per_sec": 49084, "bytes_per_op": 37747584, "allocs_per_op": 774},
      {"name": "BenchmarkSimAtScale/search=par", "ns_per_op": 958372104, "jobs_per_sec": 52172, "bytes_per_op": 37747584, "allocs_per_op": 774},
      {"name": "BenchmarkSimAtScale/search=par/workers=1", "ns_per_op": 975306724, "jobs_per_sec": 51266, "bytes_per_op": 37747584, "allocs_per_op": 774},
      {"name": "BenchmarkSimAtScale/search=par/workers=2", "ns_per_op": 1051088031, "jobs_per_sec": 47570, "bytes_per_op": 37774176, "allocs_per_op": 938},
      {"name": "BenchmarkSimAtScale/search=par/workers=4", "ns_per_op": 1102395293, "jobs_per_sec": 45356, "bytes_per_op": 37774176, "allocs_per_op": 938},
      {"name": "BenchmarkSimAtScale/search=par/workers=8", "ns_per_op": 1103732766, "jobs_per_sec": 45301, "bytes_per_op": 37774176, "allocs_per_op": 938},
      {"name": "BenchmarkPlanEarliestStart/flat", "ns_per_op": 36.34, "bytes_per_op": 0, "allocs_per_op": 0},
      {"name": "BenchmarkPlanEarliestStart/partition", "ns_per_op": 38.27, "bytes_per_op": 0, "allocs_per_op": 0},
      {"name": "BenchmarkPlanCommit", "ns_per_op": 611.5, "bytes_per_op": 1040, "allocs_per_op": 5}
    ]
  },
EOF
	printf '  "fair_ratios": [\n'
	cat "$ratios"
	printf '  ],\n'
	printf '  "whatif": [\n'
	cat "$whatif"
	printf '  ],\n'
	printf '  "benchmarks": [\n'
	cat "$body"
	printf '  ]\n}\n'
} >"$out"

echo "bench.sh: wrote $out" >&2
