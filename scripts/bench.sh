#!/bin/sh
# Runs the scheduling benchmarks and writes a machine-readable summary
# to BENCH_<n>.json (default BENCH_6.json) so perf changes are tracked
# in-repo. The default set covers the window-search micro-benchmarks,
# the end-to-end simulation benchmark (BenchmarkSimEndToEnd), and the
# full-Intrepid 50k-job scale benchmark (BenchmarkSimAtScale), which
# sweeps the work-stealing search across worker counts.
#
# The emitted file carries three audit sections:
#
#   - "env": GOMAXPROCS (pinned for the run, see below), the worker-pool
#     width the parallel search would use (one per CPU), and the CPU
#     model, so cross-machine comparisons are honest (cmd/benchcompare
#     warns on mismatch);
#   - "baseline": the numbers measured by the previous PR's artifact
#     (BENCH_4: batched fairness oracle, zero-alloc serial hot path,
#     first worker-count sweep), so the speedup from the incremental
#     event-mode oracle and the per-worker search arenas is auditable
#     from the artifact alone;
#   - "fair_ratios": the fairness-oracle overhead family — for each
#     engine mode, fair=on versus fair=off ns/op and their ratio,
#     computed from this run's own SimEndToEnd rows. The ratio is the
#     number the incremental oracle exists to shrink, so it is recorded
#     first-class rather than left to artifact readers to derive.
#
# Usage: scripts/bench.sh [output.json] [bench regex]
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_6.json}
pattern=${2:-'ScheduleIteration|PlanEarliestStart|PlanCommit|SimEndToEnd|SimAtScale'}
raw=$(mktemp)
body=$(mktemp)
ratios=$(mktemp)
trap 'rm -f "$raw" "$body" "$ratios"' EXIT

# Pin GOMAXPROCS for the whole run so the recorded value is the value
# the benchmarks actually ran under (an inherited mid-run change or an
# unset variable would otherwise make the artifact lie about the
# parallelism the numbers were measured at). Defaults to every CPU.
GOMAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
export GOMAXPROCS
gomaxprocs=$GOMAXPROCS
workers=$(nproc 2>/dev/null || echo 1)

echo "bench.sh: running go test -bench '$pattern' (GOMAXPROCS=$GOMAXPROCS) ..." >&2
# Three repetitions per benchmark; the awk pass below keeps the best
# (minimum ns/op) draw per name. On a shared 1-CPU box background load
# only ever adds time, so min-of-N is the low-noise estimator.
go test -run '^$' -bench "$pattern" -benchmem -count 3 . | tee "$raw" >&2

goversion=$(go env GOVERSION)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
cpumodel=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
[ -n "$cpumodel" ] || cpumodel=unknown

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; jobs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "jobs/s")    jobs = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (jobs != "")   line = line sprintf(", \"jobs_per_sec\": %s", jobs)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    # -count N repeats each benchmark; keep the best (min ns/op) draw.
    if (!(name in best) || ns + 0 < bestNs[name]) {
        if (!(name in best)) order[++n] = name
        best[name] = line
        bestNs[name] = ns + 0
    }
    if (name ~ /SimEndToEnd/) fairNs[name] = bestNs[name]
}
END {
    for (i = 1; i <= n; i++)
        printf "%s%s\n", best[order[i]], (i < n ? "," : "")
}
' "$raw" >"$body"

# Derive the fair-oracle overhead family from the SimEndToEnd rows just
# kept: per mode, fair=on vs fair=off ns/op and the ratio between them.
awk -F'"' '
/SimEndToEnd/ {
    name = $4
    split($0, f, "\"ns_per_op\": ")
    ns = f[2] + 0
    mode = name
    sub(/^BenchmarkSimEndToEnd\//, "", mode)
    sub(/\/fair=(on|off)$/, "", mode)
    if (name ~ /fair=on$/)  on[mode] = ns
    if (name ~ /fair=off$/) off[mode] = ns
    if (!(mode in seen)) { order[++n] = mode; seen[mode] = 1 }
}
END {
    first = 1
    for (i = 1; i <= n; i++) {
        m = order[i]
        if (!(m in on) || !(m in off) || off[m] == 0) continue
        if (!first) printf ",\n"
        first = 0
        printf "    {\"mode\": \"%s\", \"fair_off_ns\": %d, \"fair_on_ns\": %d, \"ratio\": %.2f}", \
            m, off[m], on[m], on[m] / off[m]
    }
    if (!first) printf "\n"
}
' "$body" >"$ratios"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$stamp"
	printf '  "go": "%s",\n' "$goversion"
	printf '  "env": {\n'
	printf '    "gomaxprocs": %s,\n' "$gomaxprocs"
	printf '    "search_workers": %s,\n' "$workers"
	printf '    "cpu": "%s"\n' "$cpumodel"
	printf '  },\n'
	cat <<'EOF'
  "baseline": {
    "note": "BENCH_4: previous PR (batched fairness oracle, zero-alloc serial hot path, first worker sweep), same machine class, gomaxprocs=1",
    "benchmarks": [
      {"name": "BenchmarkSimAtScale/search=serial", "ns_per_op": 1123960857, "jobs_per_sec": 44486, "bytes_per_op": 37747520, "allocs_per_op": 774},
      {"name": "BenchmarkSimAtScale/search=par", "ns_per_op": 1084352380, "jobs_per_sec": 46111, "bytes_per_op": 37747520, "allocs_per_op": 774},
      {"name": "BenchmarkSimAtScale/search=par/workers=1", "ns_per_op": 1137142867, "jobs_per_sec": 43970, "bytes_per_op": 37747520, "allocs_per_op": 774},
      {"name": "BenchmarkSimAtScale/search=par/workers=2", "ns_per_op": 1306023621, "jobs_per_sec": 38284, "bytes_per_op": 42894488, "allocs_per_op": 169871},
      {"name": "BenchmarkSimAtScale/search=par/workers=4", "ns_per_op": 1324170534, "jobs_per_sec": 37760, "bytes_per_op": 44567064, "allocs_per_op": 196006},
      {"name": "BenchmarkSimAtScale/search=par/workers=8", "ns_per_op": 1276246829, "jobs_per_sec": 39177, "bytes_per_op": 45387736, "allocs_per_op": 208841},
      {"name": "BenchmarkSimEndToEnd/event/fair=off", "ns_per_op": 2123500, "jobs_per_sec": 120085, "bytes_per_op": 146946, "allocs_per_op": 313},
      {"name": "BenchmarkSimEndToEnd/event/fair=on", "ns_per_op": 11208154, "jobs_per_sec": 22751, "bytes_per_op": 342964, "allocs_per_op": 1096},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=off", "ns_per_op": 5719212, "jobs_per_sec": 44587, "bytes_per_op": 171551, "allocs_per_op": 319},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=on", "ns_per_op": 12484426, "jobs_per_sec": 20425, "bytes_per_op": 377151, "allocs_per_op": 1716}
    ]
  },
EOF
	printf '  "fair_ratios": [\n'
	cat "$ratios"
	printf '  ],\n'
	printf '  "benchmarks": [\n'
	cat "$body"
	printf '  ]\n}\n'
} >"$out"

echo "bench.sh: wrote $out" >&2
