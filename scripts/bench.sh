#!/bin/sh
# Runs the scheduling benchmarks and writes a machine-readable summary
# to BENCH_<n>.json (default BENCH_2.json) so perf changes are tracked
# in-repo. The default set covers the window-search micro-benchmarks
# and the end-to-end simulation benchmark (BenchmarkSimEndToEnd).
#
# The emitted file also carries a "baseline" section: the
# BenchmarkSimEndToEnd numbers measured at the last commit before the
# engine-performance PR (pass elision, incremental queue, pruned
# fairness oracle, cursor-backed metric windows), so the end-to-end
# speedup is auditable from the artifact alone.
#
# Usage: scripts/bench.sh [output.json] [bench regex]
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_2.json}
pattern=${2:-'ScheduleIteration|PlanEarliestStart|PlanCommit|SimEndToEnd'}
raw=$(mktemp)
body=$(mktemp)
trap 'rm -f "$raw" "$body"' EXIT

echo "bench.sh: running go test -bench '$pattern' ..." >&2
go test -run '^$' -bench "$pattern" -benchmem -count 1 . | tee "$raw" >&2

goversion=$(go env GOVERSION)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; jobs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "jobs/s")    jobs = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (jobs != "")   line = line sprintf(", \"jobs_per_sec\": %s", jobs)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    benches[++n] = line
}
END {
    for (i = 1; i <= n; i++)
        printf "%s%s\n", benches[i], (i < n ? "," : "")
}
' "$raw" >"$body"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$stamp"
	printf '  "go": "%s",\n' "$goversion"
	cat <<'EOF'
  "baseline": {
    "note": "BenchmarkSimEndToEnd before the engine-performance work (commit 7e26e14), same machine class",
    "benchmarks": [
      {"name": "BenchmarkSimEndToEnd/event/fair=off", "ns_per_op": 8410071, "jobs_per_sec": 30321, "bytes_per_op": 1483857, "allocs_per_op": 25633},
      {"name": "BenchmarkSimEndToEnd/event/fair=on", "ns_per_op": 40668667, "jobs_per_sec": 6270, "bytes_per_op": 6668208, "allocs_per_op": 106329},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=off", "ns_per_op": 212707283, "jobs_per_sec": 1199, "bytes_per_op": 61223651, "allocs_per_op": 1171504},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=on", "ns_per_op": 2072497783, "jobs_per_sec": 123.0, "bytes_per_op": 492637240, "allocs_per_op": 10693755}
    ]
  },
EOF
	printf '  "benchmarks": [\n'
	cat "$body"
	printf '  ]\n}\n'
} >"$out"

echo "bench.sh: wrote $out" >&2
