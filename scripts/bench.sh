#!/bin/sh
# Runs the scheduling benchmarks and writes a machine-readable summary
# to BENCH_<n>.json (default BENCH_3.json) so perf changes are tracked
# in-repo. The default set covers the window-search micro-benchmarks,
# the end-to-end simulation benchmark (BenchmarkSimEndToEnd), and the
# full-Intrepid 50k-job scale benchmark (BenchmarkSimAtScale).
#
# The emitted file carries two audit sections:
#
#   - "env": GOMAXPROCS, the worker-pool width the parallel search
#     would use (one per CPU), and the CPU model, so cross-machine
#     comparisons are honest (cmd/benchcompare warns on mismatch);
#   - "baseline": the numbers measured at the last commit before the
#     full-Intrepid scaling PR (bitset occupancy, indexed availability
#     profiles, parallel window search, streaming traces), so the
#     speedup is auditable from the artifact alone.
#
# Usage: scripts/bench.sh [output.json] [bench regex]
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_3.json}
pattern=${2:-'ScheduleIteration|PlanEarliestStart|PlanCommit|SimEndToEnd|SimAtScale'}
raw=$(mktemp)
body=$(mktemp)
trap 'rm -f "$raw" "$body"' EXIT

echo "bench.sh: running go test -bench '$pattern' ..." >&2
# Three repetitions per benchmark; the awk pass below keeps the best
# (minimum ns/op) draw per name. On a shared 1-CPU box background load
# only ever adds time, so min-of-N is the low-noise estimator.
go test -run '^$' -bench "$pattern" -benchmem -count 3 . | tee "$raw" >&2

goversion=$(go env GOVERSION)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gomaxprocs=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
workers=$(nproc 2>/dev/null || echo 1)
cpumodel=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
[ -n "$cpumodel" ] || cpumodel=unknown

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; jobs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "jobs/s")    jobs = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (jobs != "")   line = line sprintf(", \"jobs_per_sec\": %s", jobs)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    # -count N repeats each benchmark; keep the best (min ns/op) draw.
    if (!(name in best) || ns + 0 < bestNs[name]) {
        if (!(name in best)) order[++n] = name
        best[name] = line
        bestNs[name] = ns + 0
    }
}
END {
    for (i = 1; i <= n; i++)
        printf "%s%s\n", best[order[i]], (i < n ? "," : "")
}
' "$raw" >"$body"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$stamp"
	printf '  "go": "%s",\n' "$goversion"
	printf '  "env": {\n'
	printf '    "gomaxprocs": %s,\n' "$gomaxprocs"
	printf '    "search_workers": %s,\n' "$workers"
	printf '    "cpu": "%s"\n' "$cpumodel"
	printf '  },\n'
	cat <<'EOF'
  "baseline": {
    "note": "before the full-Intrepid scaling work (commit 7320e7d, serial search), same machine class",
    "benchmarks": [
      {"name": "BenchmarkSimAtScale/search=serial", "ns_per_op": 4149747227, "jobs_per_sec": 12049, "bytes_per_op": 786992960, "allocs_per_op": 15327953},
      {"name": "BenchmarkSimEndToEnd/event/fair=off", "ns_per_op": 3249491, "jobs_per_sec": 78474, "bytes_per_op": 644862, "allocs_per_op": 11163},
      {"name": "BenchmarkSimEndToEnd/event/fair=on", "ns_per_op": 21191637, "jobs_per_sec": 12033, "bytes_per_op": 3419715, "allocs_per_op": 66995},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=off", "ns_per_op": 37924637, "jobs_per_sec": 6724, "bytes_per_op": 18396614, "allocs_per_op": 250946},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=on", "ns_per_op": 199123452, "jobs_per_sec": 1281, "bytes_per_op": 59355669, "allocs_per_op": 1317755}
    ]
  },
EOF
	printf '  "benchmarks": [\n'
	cat "$body"
	printf '  ]\n}\n'
} >"$out"

echo "bench.sh: wrote $out" >&2
