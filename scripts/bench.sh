#!/bin/sh
# Runs the window-search benchmarks and writes a machine-readable
# summary to BENCH_<n>.json (default BENCH_1.json) so perf changes are
# tracked in-repo.
#
# Usage: scripts/bench.sh [output.json] [bench regex]
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_1.json}
pattern=${2:-'ScheduleIteration|PlanEarliestStart|PlanCommit'}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "bench.sh: running go test -bench '$pattern' ..." >&2
go test -run '^$' -bench "$pattern" -benchmem -count 1 . | tee "$raw" >&2

goversion=$(go env GOVERSION)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)

awk -v goversion="$goversion" -v stamp="$stamp" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    benches[++n] = line
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", stamp
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++)
        printf "%s%s\n", benches[i], (i < n ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" >"$out"

echo "bench.sh: wrote $out" >&2
