#!/bin/sh
# Runs the scheduling benchmarks and writes a machine-readable summary
# to BENCH_<n>.json (default BENCH_4.json) so perf changes are tracked
# in-repo. The default set covers the window-search micro-benchmarks,
# the end-to-end simulation benchmark (BenchmarkSimEndToEnd), and the
# full-Intrepid 50k-job scale benchmark (BenchmarkSimAtScale), which
# now sweeps the work-stealing search across worker counts.
#
# The emitted file carries two audit sections:
#
#   - "env": GOMAXPROCS (pinned for the run, see below), the worker-pool
#     width the parallel search would use (one per CPU), and the CPU
#     model, so cross-machine comparisons are honest (cmd/benchcompare
#     warns on mismatch);
#   - "baseline": the numbers measured by the previous PR's artifact
#     (BENCH_3: bitset occupancy, indexed availability profiles, first
#     parallel window search), so the speedup from the batched fairness
#     oracle and the zero-alloc hot path is auditable from the artifact
#     alone.
#
# Usage: scripts/bench.sh [output.json] [bench regex]
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_4.json}
pattern=${2:-'ScheduleIteration|PlanEarliestStart|PlanCommit|SimEndToEnd|SimAtScale'}
raw=$(mktemp)
body=$(mktemp)
trap 'rm -f "$raw" "$body"' EXIT

# Pin GOMAXPROCS for the whole run so the recorded value is the value
# the benchmarks actually ran under (an inherited mid-run change or an
# unset variable would otherwise make the artifact lie about the
# parallelism the numbers were measured at). Defaults to every CPU.
GOMAXPROCS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
export GOMAXPROCS
gomaxprocs=$GOMAXPROCS
workers=$(nproc 2>/dev/null || echo 1)

echo "bench.sh: running go test -bench '$pattern' (GOMAXPROCS=$GOMAXPROCS) ..." >&2
# Three repetitions per benchmark; the awk pass below keeps the best
# (minimum ns/op) draw per name. On a shared 1-CPU box background load
# only ever adds time, so min-of-N is the low-noise estimator.
go test -run '^$' -bench "$pattern" -benchmem -count 3 . | tee "$raw" >&2

goversion=$(go env GOVERSION)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
cpumodel=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
[ -n "$cpumodel" ] || cpumodel=unknown

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; jobs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "jobs/s")    jobs = $i
    }
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (jobs != "")   line = line sprintf(", \"jobs_per_sec\": %s", jobs)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    # -count N repeats each benchmark; keep the best (min ns/op) draw.
    if (!(name in best) || ns + 0 < bestNs[name]) {
        if (!(name in best)) order[++n] = name
        best[name] = line
        bestNs[name] = ns + 0
    }
}
END {
    for (i = 1; i <= n; i++)
        printf "%s%s\n", best[order[i]], (i < n ? "," : "")
}
' "$raw" >"$body"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$stamp"
	printf '  "go": "%s",\n' "$goversion"
	printf '  "env": {\n'
	printf '    "gomaxprocs": %s,\n' "$gomaxprocs"
	printf '    "search_workers": %s,\n' "$workers"
	printf '    "cpu": "%s"\n' "$cpumodel"
	printf '  },\n'
	cat <<'EOF'
  "baseline": {
    "note": "BENCH_3: previous PR (full-Intrepid bitset occupancy, indexed plans, first parallel search), same machine class, gomaxprocs=1",
    "benchmarks": [
      {"name": "BenchmarkSimAtScale/search=serial", "ns_per_op": 1359974961, "jobs_per_sec": 36765, "bytes_per_op": 176817568, "allocs_per_op": 1317304},
      {"name": "BenchmarkSimAtScale/search=par", "ns_per_op": 1280900250, "jobs_per_sec": 39035, "bytes_per_op": 176817552, "allocs_per_op": 1317304},
      {"name": "BenchmarkSimEndToEnd/event/fair=off", "ns_per_op": 2435262, "jobs_per_sec": 104712, "bytes_per_op": 420486, "allocs_per_op": 5642},
      {"name": "BenchmarkSimEndToEnd/event/fair=on", "ns_per_op": 14442696, "jobs_per_sec": 17656, "bytes_per_op": 1861215, "allocs_per_op": 31209},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=off", "ns_per_op": 28706793, "jobs_per_sec": 8883, "bytes_per_op": 14588744, "allocs_per_op": 126670},
      {"name": "BenchmarkSimEndToEnd/periodic/fair=on", "ns_per_op": 107223042, "jobs_per_sec": 2378, "bytes_per_op": 33108411, "allocs_per_op": 458007}
    ]
  },
EOF
	printf '  "benchmarks": [\n'
	cat "$body"
	printf '  ]\n}\n'
} >"$out"

echo "bench.sh: wrote $out" >&2
