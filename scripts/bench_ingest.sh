#!/bin/sh
# Measures the daemon's HTTP ingest throughput over TCP loopback and
# writes the BENCH_5.json artifact: a saturation curve (offered vs
# achieved rate with latency percentiles per step) plus a full-speed
# peak, in the schema cmd/benchcompare reads. The embedded baseline is
# the pre-batching single-request path measured before this change.
#
# Usage: scripts/bench_ingest.sh [output.json]
#   BATCH     jobs per POST            (default 256)
#   STEP_DUR  per-step duration        (default 3s)
#   CURVE     offered rates to sweep   (default 20000,50000,100000,200000)
#   MAXJOBS   jobs for the full-speed step (default 300000)
set -eu

cd "$(dirname "$0")/.."

out=${1:-BENCH_5.json}
BATCH=${BATCH:-256}
STEP_DUR=${STEP_DUR:-3s}
CURVE=${CURVE:-20000,50000,100000,200000}
MAXJOBS=${MAXJOBS:-300000}

bin=$(mktemp -d)
log="$bin/amjsd.log"
trap 'kill "$daemon_pid" 2>/dev/null || true; wait "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/amjsd" ./cmd/amjsd
go build -o "$bin/amjs-load" ./cmd/amjs-load

"$bin/amjsd" -addr 127.0.0.1:0 -machine flat:512 -policy easy \
    -speedup inf -log-requests=false >"$bin/announce" 2>"$log" &
daemon_pid=$!

addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^amjsd listening on \(.*\)$/\1/p' "$bin/announce" 2>/dev/null || true)
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "bench_ingest: daemon died:" >&2; cat "$log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "bench_ingest: daemon never announced its address" >&2; cat "$log" >&2; exit 1; }

# The curve sweeps offered rates for STEP_DUR each; the trailing 0 is
# the full-speed step (bounded by -max) whose achieved rate is the
# peak. The baseline is the single-request path measured on this host
# class before batching (amjs-load pre-change, BENCH_4 era: ~14k/s).
echo "bench_ingest: daemon at $addr, sweeping $CURVE + full speed (batch=$BATCH)" >&2
"$bin/amjs-load" -addr "http://$addr" -trace gen -batch "$BATCH" -workers 4 \
    -curve "$CURVE,0" -step-dur "$STEP_DUR" -max "$MAXJOBS" \
    -json "$out" \
    -baseline-note "single-request POST /v1/jobs loop, default transport (pre-batching amjs-load on this host class)" \
    -baseline-rate 14000
echo "bench_ingest: wrote $out" >&2
