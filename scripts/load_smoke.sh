#!/bin/sh
# Boots amjsd on an ephemeral port and runs amjs-load against it in
# batched mode — the end-to-end smoke of the sharded ingest path over a
# real TCP loopback (the Go tests cover the same path in-process). The
# run fails unless the achieved submission rate clears MIN_RATE, a
# deliberately conservative floor so the gate holds on small shared CI
# hosts; scripts/bench_ingest.sh is the measured run.
#
# Usage: scripts/load_smoke.sh
#   MIN_RATE  throughput floor in jobs/s   (default 20000)
#   JOBS      jobs to submit               (default 100000)
#   BATCH     jobs per POST                (default 256)
set -eu

cd "$(dirname "$0")/.."

MIN_RATE=${MIN_RATE:-20000}
JOBS=${JOBS:-100000}
BATCH=${BATCH:-256}

bin=$(mktemp -d)
log="$bin/amjsd.log"
trap 'kill "$daemon_pid" 2>/dev/null || true; wait "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/amjsd" ./cmd/amjsd
go build -o "$bin/amjs-load" ./cmd/amjs-load

# Port 0 binds an ephemeral port; the daemon announces the real one on
# stdout as "amjsd listening on HOST:PORT".
"$bin/amjsd" -addr 127.0.0.1:0 -machine flat:512 -policy easy \
    -speedup inf -log-requests=false >"$bin/announce" 2>"$log" &
daemon_pid=$!

addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^amjsd listening on \(.*\)$/\1/p' "$bin/announce" 2>/dev/null || true)
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "load_smoke: daemon died:" >&2; cat "$log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "load_smoke: daemon never announced its address" >&2; cat "$log" >&2; exit 1; }

echo "load_smoke: daemon at $addr, submitting $JOBS jobs in batches of $BATCH (floor $MIN_RATE/s)" >&2
"$bin/amjs-load" -addr "http://$addr" -trace "gen:$JOBS" -batch "$BATCH" \
    -workers 4 -min-rate "$MIN_RATE"
echo "load_smoke: ok" >&2
