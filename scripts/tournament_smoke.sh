#!/bin/sh
# End-to-end smoke of the cross-trace policy tournament: generates a
# mini SWF trace with amjs-gen, plays a >= 6-policy league over the
# synthetic mini workload plus that trace, and asserts
#   1. artifact schema: league text/CSV/JSON carry the headline columns
#      (rank, policy, avg BSLD, wait, util, fairness) and the standings;
#   2. rank sanity: every trace ranks each policy exactly once, 1..P,
#      and the standings cover every policy;
#   3. determinism: -workers 1 and -workers 8 produce byte-identical
#      text, CSV, and JSON artifacts.
#
# Usage: scripts/tournament_smoke.sh
#   JOBS      jobs per trace     (default 60)
#   POLICIES  policy list        (default: 8-policy zoo slice)
set -eu

cd "$(dirname "$0")/.."

JOBS=${JOBS:-60}
POLICIES=${POLICIES:-fcfs,sjf,easy,conservative,wfp,unicef,smallest,metric:0.5:4}

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT

go build -o "$bin/amjs-tournament" ./cmd/amjs-tournament
go build -o "$bin/amjs-gen" ./cmd/amjs-gen

"$bin/amjs-gen" -workload mini -seed 7 -jobs "$JOBS" -o "$bin/mini.swf"

npolicies=$(echo "$POLICIES" | tr ',' '\n' | wc -l | tr -d ' ')
[ "$npolicies" -ge 6 ] || { echo "tournament_smoke: need >= 6 policies, got $npolicies" >&2; exit 1; }

for workers in 1 8; do
    "$bin/amjs-tournament" \
        -machines partition:8x64 \
        -workloads "mini,swf:$bin/mini.swf" \
        -policies "$POLICIES" -jobs "$JOBS" -fairness -workers "$workers" \
        -txt "$bin/league$workers.txt" -csv "$bin/league$workers.csv" \
        -json "$bin/league$workers.json" >"$bin/stdout$workers" 2>"$bin/stderr$workers" || {
        echo "tournament_smoke: run failed (workers=$workers):" >&2
        cat "$bin/stderr$workers" >&2
        exit 1
    }
done

# 1. Schema: text artifact carries the standings and headline columns.
for want in "League standings" "avg BSLD" "util (%)" "unfair" "mean rank" "wins"; do
    grep -qF "$want" "$bin/league1.txt" || {
        echo "tournament_smoke: text artifact missing \"$want\"" >&2
        exit 1
    }
done
head -1 "$bin/league1.csv" | grep -q "trace,rank,policy,name,adaptive,avg_bsld" || {
    echo "tournament_smoke: unexpected CSV header: $(head -1 "$bin/league1.csv")" >&2
    exit 1
}
grep -q '"standings"' "$bin/league1.json" || {
    echo "tournament_smoke: JSON artifact has no standings" >&2
    exit 1
}

# 2. Rank sanity over the CSV: per trace, ranks must be a permutation
# of 1..npolicies (each exactly once), across exactly 2 traces.
awk -F, -v P="$npolicies" '
NR > 1 {
    if (seen[$1, $2]++) { print "duplicate rank " $2 " in trace " $1; bad = 1 }
    if ($2 < 1 || $2 > P) { print "rank " $2 " out of range in trace " $1; bad = 1 }
    count[$1]++
}
END {
    traces = 0
    for (tr in count) {
        traces++
        if (count[tr] != P) { print "trace " tr " has " count[tr] " cells, want " P; bad = 1 }
    }
    if (traces != 2) { print "expected 2 traces, found " traces; bad = 1 }
    exit bad
}' "$bin/league1.csv" || { echo "tournament_smoke: rank sanity failed" >&2; exit 1; }

# 3. Byte-identity across worker counts, for every artifact.
for ext in txt csv json; do
    cmp -s "$bin/league1.$ext" "$bin/league8.$ext" || {
        echo "tournament_smoke: league.$ext differs between workers=1 and workers=8" >&2
        exit 1
    }
done
cmp -s "$bin/stdout1" "$bin/stdout8" || {
    echo "tournament_smoke: stdout differs between workers=1 and workers=8" >&2
    exit 1
}

echo "tournament_smoke: ok ($npolicies policies x 2 traces, deterministic)" >&2
