#!/bin/sh
# Boots amjsd with the simulation-in-the-loop tuner on an ephemeral
# port, batch-submits a contended synthetic trace over real TCP
# loopback, drains at speedup=inf, and asserts through /v1/tuner that
# the what-if planner actually ran and committed at least one (BF, W)
# retune — the end-to-end smoke of policy parsing, the lookahead
# planner, the tuner's joint-commit path, and the status surface, all
# through the public HTTP API.
#
# Usage: scripts/whatif_smoke.sh
#   JOBS      jobs to submit            (default 200)
#   POLICY    what-if policy spec       (default whatif:avg-wait:1)
set -eu

cd "$(dirname "$0")/.."

JOBS=${JOBS:-200}
POLICY=${POLICY:-whatif:avg-wait:1}

command -v curl >/dev/null || { echo "whatif_smoke: curl not found" >&2; exit 1; }

bin=$(mktemp -d)
log="$bin/amjsd.log"
trap 'kill "$daemon_pid" 2>/dev/null || true; wait "$daemon_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/amjsd" ./cmd/amjsd

"$bin/amjsd" -addr 127.0.0.1:0 -machine flat:512 -policy "$POLICY" \
    -speedup inf -log-requests=false >"$bin/announce" 2>"$log" &
daemon_pid=$!

addr=
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^amjsd listening on \(.*\)$/\1/p' "$bin/announce" 2>/dev/null || true)
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "whatif_smoke: daemon died:" >&2; cat "$log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "whatif_smoke: daemon never announced its address" >&2; cat "$log" >&2; exit 1; }

# A contended trace: job sizes cycle up to the full machine, arrivals
# every 5 virtual minutes, runtimes long enough that the queue deepens
# and the planner's rollouts diverge across the (BF, W) grid.
awk -v n="$JOBS" 'BEGIN {
    printf "["
    for (i = 0; i < n; i++) {
        split("32 64 64 128 128 256 512", sizes, " ")
        nodes = sizes[i % 7 + 1]
        runtime = 600 + (i % 17) * 300
        walltime = runtime + 900 + (i % 5) * 1800
        printf "%s{\"user\":\"u%d\",\"nodes\":%d,\"walltime_sec\":%d,\"runtime_sec\":%d,\"submit_sec\":%d}", \
            (i ? "," : ""), i % 11, nodes, walltime, runtime, i * 300
    }
    printf "]"
}' >"$bin/jobs.json"

echo "whatif_smoke: daemon at $addr (policy $POLICY), submitting $JOBS jobs" >&2
code=$(curl -s -o "$bin/submit.json" -w '%{http_code}' \
    -H 'Content-Type: application/json' --data-binary @"$bin/jobs.json" \
    "http://$addr/v1/jobs")
[ "$code" = 200 ] || [ "$code" = 201 ] || {
    echo "whatif_smoke: batch submit returned HTTP $code" >&2
    cat "$bin/submit.json" >&2
    exit 1
}

curl -s -X POST "http://$addr/v1/drain" >/dev/null

curl -s "http://$addr/v1/tuner" >"$bin/tuner.json"

# Assert: what-if policy live, planner ticked, and >= 1 committed
# decision. grep -o keeps this dependency-free (no jq on CI hosts).
grep -q '"policy": *"adaptive(whatif)"' "$bin/tuner.json" || {
    echo "whatif_smoke: /v1/tuner policy is not adaptive(whatif):" >&2
    cat "$bin/tuner.json" >&2
    exit 1
}
ticks=$(grep -o '"ticks": *[0-9]*' "$bin/tuner.json" | head -1 | tr -dc 0-9)
commits=$(grep -o '"commits": *[0-9]*' "$bin/tuner.json" | head -1 | tr -dc 0-9)
[ -n "$ticks" ] && [ "$ticks" -gt 0 ] || {
    echo "whatif_smoke: planner never ticked (ticks=$ticks):" >&2
    cat "$bin/tuner.json" >&2
    exit 1
}
[ -n "$commits" ] && [ "$commits" -ge 1 ] || {
    echo "whatif_smoke: no committed decisions (commits=$commits):" >&2
    cat "$bin/tuner.json" >&2
    exit 1
}
echo "whatif_smoke: ok (ticks=$ticks commits=$commits)" >&2
